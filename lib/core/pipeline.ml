module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module K = Signal_lang.Kernel

type analyzed = {
  package : Aadl.Syntax.package;
  aadl_issues : Aadl.Check.issue list;
  instance : Aadl.Instance.t;
  translation : Trans.System_trans.output;
  kernel : K.kprocess;
  calc : Clocks.Calculus.t;
  hierarchy : Clocks.Hierarchy.t;
  determinism : Analysis.Determinism.report;
  deadlock : Analysis.Deadlock.report;
  typecheck_errors : Signal_lang.Typecheck.error list;
}

let ( let* ) = Result.bind

let default_root pkgs =
  let impls =
    List.concat_map
      (fun pkg ->
        List.filter_map
          (function
            | Aadl.Syntax.Dimpl ci
              when ci.Aadl.Syntax.ci_category = Aadl.Syntax.System ->
              Some (pkg, ci.Aadl.Syntax.ci_name)
            | Aadl.Syntax.Dimpl _ | Aadl.Syntax.Dtype _ -> None)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  (* prefer an implementation that is not a subcomponent of another *)
  let used_as_sub name =
    List.exists
      (fun pkg ->
        List.exists
          (function
            | Aadl.Syntax.Dimpl ci ->
              List.exists
                (fun sc -> sc.Aadl.Syntax.sc_classifier = Some name)
                ci.Aadl.Syntax.ci_subcomponents
            | Aadl.Syntax.Dtype _ -> false)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  match List.filter (fun (_, n) -> not (used_as_sub n)) impls with
  | [ one ] -> Ok one
  | [] -> (
    match impls with
    | [ one ] -> Ok one
    | _ -> Error "cannot determine a root system implementation")
  | _ :: _ :: _ ->
    Error "several candidate root systems; pass ~root explicitly"

let analyze_package ?(registry = []) ?policy ?(context = []) ~root pkg =
  let aadl_issues =
    List.concat_map Aadl.Check.check_package (pkg :: context)
  in
  match Aadl.Check.errors aadl_issues with
  | _ :: _ as errs ->
    Error
      (String.concat "; "
         (List.map (Format.asprintf "%a" Aadl.Check.pp_issue) errs))
  | [] ->
    let* instance = Aadl.Instance.instantiate ~context pkg ~root in
    let* translation =
      Trans.System_trans.translate ~registry ?policy instance
    in
    let typecheck_errors =
      Signal_lang.Typecheck.check_program translation.Trans.System_trans.program
    in
    let* kernel =
      Signal_lang.Normalize.process
        ~program:translation.Trans.System_trans.program
        translation.Trans.System_trans.top
    in
    let calc = Clocks.Calculus.analyze kernel in
    let hierarchy = Clocks.Hierarchy.build calc in
    let determinism = Analysis.Determinism.analyze calc kernel in
    let deadlock = Analysis.Deadlock.analyze ~calc kernel in
    Ok
      { package = pkg; aadl_issues; instance; translation; kernel; calc;
        hierarchy; determinism; deadlock; typecheck_errors }

let analyze ?registry ?policy ?root src =
  let* pkgs = Aadl.Parser.parse_packages src in
  let* pkg, root =
    match root with
    | Some r -> (
      (* find the package defining the root *)
      let tname = Aadl.Syntax.impl_base_name r in
      match
        List.find_opt
          (fun p -> Aadl.Syntax.find_type p tname <> None)
          pkgs
      with
      | Some p -> Ok (p, r)
      | None -> (
        match pkgs with
        | p :: _ -> Ok (p, r)
        | [] -> Error "no package"))
    | None -> default_root pkgs
  in
  let context = List.filter (fun p -> p != pkg) pkgs in
  analyze_package ?registry ?policy ~context ~root pkg

(* Schedulers on different processors may use different base ticks;
   simulation advances on their gcd and pulses each processor's tick at
   its own cadence. *)
let global_base_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds ->
    let g =
      Putil.Mathx.gcd_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.base_us) scheds)
    in
    max 1 g

let global_hyper_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds -> (
    match
      Putil.Mathx.lcm_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.hyperperiod_us) scheds)
    with
    | hp -> hp
    | exception Putil.Mathx.Overflow m ->
      invalid_arg ("Pipeline.global_hyper_us: " ^ m))

let base_ticks_per_hyperperiod a = global_hyper_us a / global_base_us a

let default_env a t =
  if t = 0 then
    List.map
      (fun n -> (n, 1))
      a.translation.Trans.System_trans.env_inputs
  else []

let simulate ?(compiled = false) ?env ?(hyperperiods = 2) a =
  let env = Option.value ~default:(default_env a) env in
  let horizon = base_ticks_per_hyperperiod a * hyperperiods in
  let gbase = global_base_us a in
  (* tick inputs are generated in schedule order; pulse each at its
     processor's base cadence *)
  let ticks =
    List.map2
      (fun tk (_, s) -> (tk, s.Sched.Static_sched.base_us / gbase))
      a.translation.Trans.System_trans.tick_inputs
      a.translation.Trans.System_trans.schedules
  in
  let stimulus_at t =
    List.filter_map
      (fun (tk, every) ->
        if t mod every = 0 then Some (tk, Types.Vevent) else None)
      ticks
    @ List.map (fun (n, v) -> (n, Types.Vint v)) (env t)
  in
  let run step trace =
    let rec go t =
      if t >= horizon then Ok (trace ())
      else
        match step ~stimulus:(stimulus_at t) with
        | Ok _ -> go (t + 1)
        | Error m -> Error (Printf.sprintf "instant %d: %s" t m)
    in
    go 0
  in
  if compiled then
    match Polysim.Compile.compile a.kernel with
    | Error m -> Error ("compile: " ^ m)
    | Ok c ->
      run (fun ~stimulus -> Polysim.Compile.step c ~stimulus)
        (fun () -> Polysim.Compile.trace c)
  else
    let engine = Polysim.Engine.create a.kernel in
    run (fun ~stimulus -> Polysim.Engine.step engine ~stimulus)
      (fun () -> Polysim.Engine.trace engine)

let vcd_of_trace ?signals a tr =
  let module_name = a.translation.Trans.System_trans.top.Ast.proc_name in
  Polysim.Vcd.to_string ?signals ~module_name tr

let pp_summary ppf a =
  Format.fprintf ppf "@[<v>== AADL legality ==@,";
  (match a.aadl_issues with
   | [] -> Format.fprintf ppf "no issues@,"
   | issues ->
     List.iter
       (fun i -> Format.fprintf ppf "%a@," Aadl.Check.pp_issue i)
       issues);
  Format.fprintf ppf "@,== schedules ==@,";
  List.iter
    (fun (cpu, s) ->
      Format.fprintf ppf "processor %s:@,%a@," cpu
        Sched.Static_sched.pp_schedule s)
    a.translation.Trans.System_trans.schedules;
  Format.fprintf ppf "@,== clock calculus ==@,%a@," Clocks.Calculus.pp_summary
    a.calc;
  Format.fprintf ppf "clock hierarchy roots: %d, depth: %d@,"
    (List.length (Clocks.Hierarchy.roots a.hierarchy))
    (Clocks.Hierarchy.depth a.hierarchy);
  Format.fprintf ppf "@,== determinism ==@,%a@,"
    Analysis.Determinism.pp_report a.determinism;
  Format.fprintf ppf "@,== deadlock ==@,%a@," Analysis.Deadlock.pp_report
    a.deadlock;
  (match Polysim.Compile.compile a.kernel with
   | Ok c ->
     let free = Polysim.Compile.free_classes c in
     if free = 0 then
       Format.fprintf ppf
         "@,endochrony: every clock is derivable — the program runs on \
          its synthesized tick@,"
     else
       Format.fprintf ppf
         "@,endochrony: %d free synchronization class(es): %s@," free
         (String.concat ", " (Polysim.Compile.free_class_members c))
   | Error m -> Format.fprintf ppf "@,not compilable: %s@," m);
  (match a.typecheck_errors with
   | [] -> Format.fprintf ppf "@,SIGNAL program is well-typed@,"
   | errs ->
     Format.fprintf ppf "@,SIGNAL type errors:@,";
     List.iter
       (fun e ->
         Format.fprintf ppf "  %s@," (Signal_lang.Typecheck.error_to_string e))
       errs);
  Format.fprintf ppf "@,== run metrics ==@,%a@," Putil.Metrics.pp
    Putil.Metrics.global;
  Format.fprintf ppf "@]"

let pp_stats ppf () =
  Format.fprintf ppf "@[<v>== run metrics ==@,%a@]" Putil.Metrics.pp
    Putil.Metrics.global

let stats_json () = Putil.Metrics.to_json Putil.Metrics.global
