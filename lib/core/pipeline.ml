module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module K = Signal_lang.Kernel

(* Per-model analysis unit: everything the merged verdicts need from
   one model, in the model's own namespace (pure data — persistable).
   The interface summary fields abstract the model for the glue
   analysis: relations among interface signals provable from the model
   alone (sound under composition, which only adds constraints). *)
type proc_analysis = {
  pa_model : string;
  pa_consistent : bool;
  pa_conflicts : string list;
  pa_null : string list;
  pa_determinism : Analysis.Determinism.report;
  pa_deadlock : Analysis.Deadlock.report;
  pa_iface_eq : (string * string) list;   (* synchronous pairs *)
  pa_iface_le : (string * string) list;   (* subclock pairs *)
  pa_iface_ex : (string * string) list;   (* exclusive pairs *)
  pa_iface_null : string list;            (* provably never present *)
  pa_iface_dep : (string * string) list;  (* instantaneous in → out *)
}

type glue_analysis = {
  ga_consistent : bool;
  ga_conflicts : string list;
  ga_null : string list;
  ga_determinism : Analysis.Determinism.report;
  ga_deadlock : Analysis.Deadlock.report;
}

type analyzed = {
  package : Aadl.Syntax.package;
  aadl_issues : Aadl.Check.issue list;
  instance : Aadl.Instance.t;
  translation : Trans.System_trans.output;
  kernel : K.kprocess;
  glue_kernel : K.kprocess;
  links : Signal_lang.Normalize.link list;
  proc_analyses : (string * proc_analysis) list;
  glue : glue_analysis;
  typed_program : Signal_lang.Ast.typed Signal_lang.Ast.gprogram;
  clocked_decls :
    Signal_lang.Ast.clocked Signal_lang.Ast.gvardecl list Lazy.t;
  calc : Clocks.Calculus.t Lazy.t;
  hierarchy : Clocks.Hierarchy.t Lazy.t;
  determinism : Analysis.Determinism.report;
  deadlock : Analysis.Deadlock.report;
  typecheck_errors : Signal_lang.Typecheck.error list;
  diags : Putil.Diag.t list;
  scope : string option;
      (* the session's observation-scope label, when analyzed through a
         session: simulate/verify re-enter the same scope *)
}

(* ------------------------------------------------------------------ *)
(* Incremental sessions                                                *)
(* ------------------------------------------------------------------ *)

(* Each stage of [analyze] is a total function of its input, so a
   session caches every stage output under a content digest of that
   input. Re-analyzing edited source reruns only the prefix whose
   digests changed: the parse and instance stages key on the source
   text, but the expensive back half — typecheck, normalization, clock
   calculus and the boolean analyses — keys on the digest of the
   {e generated program} (resp. kernel). With the scheduler-exogenous
   translation mode ({!Trans.System_trans.External}) a timing-only
   edit leaves the generated program byte-identical, so editing one
   thread's period reruns parse/instantiate/translate and skips
   everything downstream. The [incr.<stage>.ran] / [.skipped] metrics
   count the traffic.

   Caches are single-slot (latest run wins): the session serves the
   edit-recheck loop, not a multi-model build system. The behaviour
   [registry] is assumed stable across one session (closures cannot be
   digested). *)

type 'v slot = (string * 'v) option ref

(* Per-process units live in name-keyed tables: one entry per process
   (resp. model), replaced when that process's key changes. The
   whole-stage slots above them short-circuit the unchanged-program
   case in one digest comparison, so per-process traffic only happens
   when the generated program actually changed. *)
type 'v proc_tbl = (string, string * 'v) Hashtbl.t

type typechecked =
  Signal_lang.Typecheck.error list
  * Signal_lang.Ast.typed Signal_lang.Ast.gprocess

type normalized = {
  n_kernel : K.kprocess;  (* fully linked top kernel *)
  n_glue : K.kprocess;
  n_links : Signal_lang.Normalize.link list;
  n_models : (string * K.kprocess) list;  (* precomputed model kernels *)
  n_profile : Analysis.Profiling.report;  (* static costs of [n_kernel] *)
  n_kdigest : string;  (* [K.digest n_kernel], computed once *)
}

type analyses = {
  a_procs : (string * proc_analysis) list;
  a_glue : glue_analysis;
  a_determinism : Analysis.Determinism.report;
  a_deadlock : Analysis.Deadlock.report;
  a_diags : Putil.Diag.t list;
}

type session = {
  s_label : string; (* observation-scope label: one scope per session *)
  s_store : Putil.Cache_store.t option;
  s_parse : Aadl.Syntax.package list slot;
  s_instance : Aadl.Instance.t slot;
  s_translate : (Trans.System_trans.output * Putil.Diag.t list) slot;
  s_typecheck :
    (Signal_lang.Typecheck.error list
    * Signal_lang.Ast.typed Signal_lang.Ast.gprogram)
      slot;
  s_tc_procs : typechecked proc_tbl;
  s_normalize : normalized slot;
  s_kernels : K.kprocess option proc_tbl;
      (* [None] records a model normalization failure: the linker falls
         back to inlining that model, reproducing the original error *)
  s_analyses : analyses slot;
  s_panas : proc_analysis proc_tbl;
  s_glue : glue_analysis proc_tbl;  (* single "glue" entry *)
}

let session_seq = Atomic.make 0

let new_session ?label ?store () =
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "session-%d" (1 + Atomic.fetch_and_add session_seq 1)
  in
  { s_label = label;
    s_store = store;
    s_parse = ref None;
    s_instance = ref None;
    s_translate = ref None;
    s_typecheck = ref None;
    s_tc_procs = Hashtbl.create 16;
    s_normalize = ref None;
    s_kernels = Hashtbl.create 16;
    s_analyses = ref None;
    s_panas = Hashtbl.create 16;
    s_glue = Hashtbl.create 1 }

let session_store session = Option.bind session (fun s -> s.s_store)
let session_label s = s.s_label

(* every stage of a session runs inside the session's observation
   scope, so concurrent sessions attribute their metrics and trace
   spans per-scope (the global registry stays the roll-up) *)
let in_session_scope session f =
  match session with
  | Some s -> Putil.Obs.with_scope ~label:s.s_label f
  | None -> f ()

let in_analyzed_scope a f =
  match a.scope with
  | Some l -> Putil.Obs.with_scope ~label:l f
  | None -> f ()

(* get-or-create per call: the registry lookup is one lock-free atomic
   load, and concurrent sessions on several domains may reach this
   simultaneously *)
let m_stage stage outcome =
  Putil.Metrics.counter ("incr." ^ stage ^ "." ^ outcome)

(* [stage_r name slot key compute]: cached value on digest match,
   fresh run otherwise; only successes are cached (failures are cheap
   to rediscover and end the run anyway). A [None] slot (no session)
   always runs. *)
let stage_r name slot key compute =
  match slot with
  | Some r when (match !r with Some (k, _) -> String.equal k key | None -> false)
    ->
    Putil.Metrics.incr (m_stage name "skipped");
    Ok (match !r with Some (_, v) -> v | None -> assert false)
  | _ -> (
    Putil.Metrics.incr (m_stage name "ran");
    match compute () with
    | Ok v ->
      (match slot with Some r -> r := Some (key, v) | None -> ());
      Ok v
    | Error _ as e -> e)

(* [stage_r] with persistent backing: slot first, store second,
   compute last. Only for stages whose value is Uid-free pure data —
   interned UIDs are dense ids into this process's interner, so a
   value carrying them (e.g. the translation's traceability table)
   would resolve against an unrelated interner when replayed by a
   fresh process, and must never go through here. *)
let stage_rp name slot store key compute =
  let store_stage = "stage." ^ name in
  match slot with
  | Some r when (match !r with Some (k, _) -> String.equal k key | None -> false)
    ->
    Putil.Metrics.incr (m_stage name "skipped");
    Ok (match !r with Some (_, v) -> v | None -> assert false)
  | _ -> (
    let record v =
      match slot with Some r -> r := Some (key, v) | None -> ()
    in
    match
      Option.bind store (fun s ->
          Putil.Cache_store.get s ~stage:store_stage ~key)
    with
    | Some v ->
      Putil.Metrics.incr (m_stage name "skipped");
      record v;
      Ok v
    | None -> (
      Putil.Metrics.incr (m_stage name "ran");
      match compute () with
      | Ok v ->
        (match store with
         | Some s -> Putil.Cache_store.put s ~stage:store_stage ~key v
         | None -> ());
        record v;
        Ok v
      | Error _ as e -> e))

(* [stage_rp] for the per-process stages: a store replay of the whole
   stage covers every unit the cold run computed, so it credits
   [proc_skipped] with the unit count derived from the replayed value
   — the per-unit accounting stays truthful ("this work was not
   redone") even though the individual [proc_unit] lookups are
   bypassed. The per-unit store entries written by the cold run remain
   in place; the edited-program path misses here (the stage key covers
   the whole program) and falls through to [proc_unit] as before. *)
let stage_rpu name slot store key ~units compute =
  let store_stage = "stage." ^ name in
  match slot with
  | Some r when (match !r with Some (k, _) -> String.equal k key | None -> false)
    ->
    Putil.Metrics.incr (m_stage name "skipped");
    Ok (match !r with Some (_, v) -> v | None -> assert false)
  | _ -> (
    let record v =
      match slot with Some r -> r := Some (key, v) | None -> ()
    in
    match
      Option.bind store (fun s ->
          Putil.Cache_store.get s ~stage:store_stage ~key)
    with
    | Some v ->
      Putil.Metrics.incr (m_stage name "skipped");
      Putil.Metrics.incr ~by:(units v) (m_stage name "proc_skipped");
      record v;
      Ok v
    | None -> (
      Putil.Metrics.incr (m_stage name "ran");
      match compute () with
      | Ok v ->
        (match store with
         | Some s -> Putil.Cache_store.put s ~stage:store_stage ~key v
         | None -> ());
        record v;
        Ok v
      | Error _ as e -> e))

let stage_pu name slot store key ~units compute =
  match stage_rpu name slot store key ~units (fun () -> Ok (compute ())) with
  | Ok v -> v
  | Error () -> assert false

(* Per-process unit inside a stage: in-memory table first, persistent
   store second, compute last. A store hit still counts as skipped —
   the work was not redone. Only successes are recorded. *)
let proc_unit stage_name tbl store store_stage pname key compute =
  let hit v =
    Putil.Metrics.incr (m_stage stage_name "proc_skipped");
    v
  in
  match tbl with
  | Some t
    when (match Hashtbl.find_opt t pname with
          | Some (k, _) -> String.equal k key
          | None -> false) ->
    hit
      (match Hashtbl.find_opt t pname with
       | Some (_, v) -> v
       | None -> assert false)
  | _ -> (
    let record v =
      (match tbl with
       | Some t -> Hashtbl.replace t pname (key, v)
       | None -> ());
      v
    in
    match
      Option.bind store (fun s ->
          Putil.Cache_store.get s ~stage:store_stage ~key)
    with
    | Some v -> hit (record v)
    | None ->
      Putil.Metrics.incr (m_stage stage_name "proc_ran");
      let v = compute () in
      (match store with
       | Some s -> Putil.Cache_store.put s ~stage:store_stage ~key v
       | None -> ());
      record v)

(* Trust boundary: stage keys are Marshal digests of pure data. A
   closure smuggled into a key would marshal the code pointer — or
   worse, appear digest-stable across semantically different runs — so
   it is rejected loudly instead. Registries of behaviour closures
   carry a stable string id ({!Trans.Behavior.id}) that is folded into
   the key in their place. *)
let digest_of v =
  match Marshal.to_string v [ Marshal.No_sharing ] with
  | s -> Digest.to_hex (Digest.string s)
  | exception Invalid_argument _ ->
    invalid_arg
      "Pipeline.digest_of: value contains a closure (functional value); \
       stage keys must be pure data — fold a stable id into the key \
       instead (see Trans.Behavior.make)"

(* Stable codes for the defects detected by the pipeline itself. *)
let code_root =
  Putil.Diag.code "CORE-ROOT-001"
    "cannot determine a root system implementation"
let code_sim = Putil.Diag.code "SIM-001" "simulation step failed"
let code_compile =
  Putil.Diag.code "COMPILE-001"
    "clock-directed compilation failed"

let span_of_loc ?file (l : Aadl.Syntax.loc) =
  if l.Aadl.Syntax.l_line > 0 then
    Some
      (Putil.Diag.span ?file ~line:l.Aadl.Syntax.l_line
         ~col:l.Aadl.Syntax.l_col ())
  else None

(* Declaration position of [signal] inside the process named
   [proc_name], when the generated code recorded one (ports carry the
   source position of the AADL feature they translate). *)
let find_var_loc program proc_name signal =
  let rec in_proc p =
    if String.equal p.Ast.proc_name proc_name then
      let all =
        p.Ast.params @ p.Ast.inputs @ p.Ast.outputs @ p.Ast.locals
      in
      match
        List.find_opt
          (fun vd -> String.equal vd.Ast.var_name signal)
          all
      with
      | Some vd -> Ast.mark_span vd.Ast.var_mark
      | None -> None
    else List.find_map in_proc p.Ast.subprocesses
  in
  List.find_map in_proc program.Ast.processes

(* A SIGNAL type error as a located diagnostic: the span is the
   declaration that produced the offending signal; the related entry
   points back at the AADL component the process was generated for,
   via the traceability table. *)
let diag_of_type_error ?file ~translation ~instance
    (e : Signal_lang.Typecheck.error) =
  let program = translation.Trans.System_trans.program in
  let span =
    match e.Signal_lang.Typecheck.err_signal with
    | Some signal -> (
      match
        find_var_loc program e.Signal_lang.Typecheck.err_proc signal
      with
      | Some sp -> (
        match file with
        | Some f -> Some (Putil.Diag.with_file f sp)
        | None -> Some sp)
      | None -> None)
    | None -> None
  in
  let related =
    match
      Trans.Traceability.aadl_of translation.Trans.System_trans.trace
        e.Signal_lang.Typecheck.err_proc
    with
    | Some path ->
      let rel_span =
        match Aadl.Instance.find instance path with
        | Some i -> span_of_loc ?file i.Aadl.Instance.i_loc
        | None -> None
      in
      [ { Putil.Diag.rel_message =
            "in the SIGNAL model generated for " ^ path;
          rel_span } ]
    | None -> []
  in
  Putil.Diag.errorf ?span ~related ~code:e.Signal_lang.Typecheck.err_code
    "process %s: %s" e.Signal_lang.Typecheck.err_proc
    e.Signal_lang.Typecheck.err_msg

let ( let* ) = Result.bind

(* Static-cost totals ride in the metrics registry so [--stats]
   (text and JSON) reports them alongside the runtime counters. *)
let m_profile_total = Putil.Metrics.gauge "profiling.total_static"
let m_profile_signals = Putil.Metrics.gauge "profiling.signals"

let default_root pkgs =
  let impls =
    List.concat_map
      (fun pkg ->
        List.filter_map
          (function
            | Aadl.Syntax.Dimpl ci
              when ci.Aadl.Syntax.ci_category = Aadl.Syntax.System ->
              Some (pkg, ci.Aadl.Syntax.ci_name)
            | Aadl.Syntax.Dimpl _ | Aadl.Syntax.Dtype _ -> None)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  (* prefer an implementation that is not a subcomponent of another *)
  let used_as_sub name =
    List.exists
      (fun pkg ->
        List.exists
          (function
            | Aadl.Syntax.Dimpl ci ->
              List.exists
                (fun sc -> sc.Aadl.Syntax.sc_classifier = Some name)
                ci.Aadl.Syntax.ci_subcomponents
            | Aadl.Syntax.Dtype _ -> false)
          pkg.Aadl.Syntax.pkg_decls)
      pkgs
  in
  match List.filter (fun (_, n) -> not (used_as_sub n)) impls with
  | [ one ] -> Ok one
  | [] -> (
    match impls with
    | [ one ] -> Ok one
    | _ -> Error "cannot determine a root system implementation")
  | _ :: _ :: _ ->
    Error "several candidate root systems; pass ~root explicitly"

(* ------------------------------------------------------------------ *)
(* Per-process analysis units                                          *)
(* ------------------------------------------------------------------ *)

(* Interface skeleton of a process: what other processes' typecheck
   and normalization can observe of it. Keying per-process units on
   (own digest × interface environment) means a body edit in one
   process leaves every other process's key unchanged. *)
let iface_of p =
  let sig_of vd = (vd.Ast.var_name, vd.Ast.var_type) in
  ( p.Ast.proc_name,
    List.map sig_of p.Ast.params,
    List.map sig_of p.Ast.inputs,
    List.map sig_of p.Ast.outputs,
    p.Ast.pragmas )

(* Program processes referenced (transitively) from [p] via instance
   statements — the normalization dependency closure. Thread models
   only reference the built-in library, so their closure is empty. *)
let dep_closure program p =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun q -> Hashtbl.replace by_name q.Ast.proc_name q)
    program.Ast.processes;
  let seen = Hashtbl.create 16 in
  let rec names_of acc p =
    let rec of_stmt acc s =
      match Ast.desc s with Ast.Sinstance i -> i.Ast.inst_proc :: acc | _ -> acc
    and of_proc acc p =
      let acc = List.fold_left of_stmt acc p.Ast.body in
      List.fold_left of_proc acc p.Ast.subprocesses
    in
    let refs = of_proc [] p in
    List.fold_left
      (fun acc n ->
        if Hashtbl.mem seen n then acc
        else begin
          Hashtbl.replace seen n ();
          match Hashtbl.find_opt by_name n with
          | Some q -> names_of (n :: acc) q
          | None -> acc
        end)
      acc refs
  in
  let deps = List.sort_uniq compare (names_of [] p) in
  List.filter_map (fun n -> Hashtbl.find_opt by_name n) deps

let model_key program m =
  let deps = dep_closure program m in
  Digest.to_hex
    (Digest.string
       (String.concat ""
          (Ast.process_digest m :: List.map Ast.process_digest deps)))

(* Analyze one model kernel standalone (inputs free) and summarize its
   interface for the glue analysis. Everything asserted about the
   interface is provable from the model alone, hence sound under any
   composition (composition only adds constraints). *)
let proc_analysis_of km =
  let calc = Clocks.Calculus.analyze km in
  let det = Analysis.Determinism.analyze calc km in
  let dl = Analysis.Deadlock.analyze ~calc km in
  let nulls = Clocks.Calculus.null_signals calc in
  let iface =
    List.map (fun vd -> vd.Ast.var_name) (km.K.kinputs @ km.K.koutputs)
  in
  let eq = ref [] and le = ref [] and ex = ref [] in
  let rec pairs = function
    | [] | [ _ ] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if Clocks.Calculus.same_class calc a b then eq := (a, b) :: !eq
          else begin
            if Clocks.Calculus.subclock calc a b then le := (a, b) :: !le;
            if Clocks.Calculus.subclock calc b a then le := (b, a) :: !le;
            if Clocks.Calculus.exclusive calc a b then ex := (a, b) :: !ex
          end)
        rest;
      pairs rest
  in
  pairs iface;
  let graph = Analysis.Deadlock.dependency_graph km in
  let ins = List.map (fun vd -> vd.Ast.var_name) km.K.kinputs in
  let outs = List.map (fun vd -> vd.Ast.var_name) km.K.koutputs in
  let deps =
    List.concat_map
      (fun i ->
        let r = Analysis.Digraph.reachable graph i in
        List.filter_map
          (fun o -> if List.mem o r then Some (i, o) else None)
          outs)
      ins
  in
  { pa_model = km.K.kname;
    pa_consistent = Clocks.Calculus.consistent calc;
    pa_conflicts = Clocks.Calculus.conflicts calc;
    pa_null = nulls;
    pa_determinism = det;
    pa_deadlock = dl;
    pa_iface_eq = List.rev !eq;
    pa_iface_le = List.rev !le;
    pa_iface_ex = List.rev !ex;
    pa_iface_null = List.filter (fun x -> List.mem x nulls) iface;
    pa_iface_dep = deps }

let renamer (link : Signal_lang.Normalize.link) =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (a, b) -> Hashtbl.replace tbl a b) link.Signal_lang.Normalize.l_rename;
  fun x -> match Hashtbl.find_opt tbl x with Some y -> y | None -> x

(* Glue kernel with per-instance interface summaries injected: the
   relations each model proves about its own interface become
   constraints over the host signals it is linked to, and provably
   null interface signals are pinned null ([Cex (x, x)] forces an
   empty clock). *)
let glue_with_summaries glue (links : Signal_lang.Normalize.link list) pas =
  let extra_constraints = ref [] and extra_edges = ref [] in
  List.iter
    (fun (l : Signal_lang.Normalize.link) ->
      match List.assoc_opt l.Signal_lang.Normalize.l_model pas with
      | None -> ()  (* model was inlined: its content is inside glue *)
      | Some pa ->
        let rn = renamer l in
        List.iter
          (fun (a, b) ->
            extra_constraints := K.Ceq (rn a, rn b) :: !extra_constraints)
          pa.pa_iface_eq;
        List.iter
          (fun (a, b) ->
            extra_constraints := K.Cle (rn a, rn b) :: !extra_constraints)
          pa.pa_iface_le;
        List.iter
          (fun (a, b) ->
            extra_constraints := K.Cex (rn a, rn b) :: !extra_constraints)
          pa.pa_iface_ex;
        List.iter
          (fun x ->
            extra_constraints := K.Cex (rn x, rn x) :: !extra_constraints)
          pa.pa_iface_null;
        List.iter
          (fun (a, b) -> extra_edges := (rn a, rn b) :: !extra_edges)
          pa.pa_iface_dep)
    links;
  ( { glue with
      K.kconstraints = glue.K.kconstraints @ List.rev !extra_constraints },
    List.rev !extra_edges )

let glue_analysis_of glue extra_edges =
  let calc = Clocks.Calculus.analyze glue in
  { ga_consistent = Clocks.Calculus.consistent calc;
    ga_conflicts = Clocks.Calculus.conflicts calc;
    ga_null = Clocks.Calculus.null_signals calc;
    ga_determinism = Analysis.Determinism.analyze calc glue;
    ga_deadlock = Analysis.Deadlock.analyze ~calc ~extra_edges glue }

(* Merge the per-instance units and the glue unit into the
   whole-system verdicts, renaming model-local signal names into the
   linked namespace. Diagnostics are regenerated from the renamed
   structured data (instance order, then glue) — same codes and
   wording as the monolithic analysis produced. *)
let merge_analyses ~stubbed (links : Signal_lang.Normalize.link list) pas ga =
  let instance_units =
    List.filter_map
      (fun (l : Signal_lang.Normalize.link) ->
        Option.map
          (fun pa -> (l, renamer l, pa))
          (List.assoc_opt l.Signal_lang.Normalize.l_model pas))
      links
  in
  let det_issues =
    List.concat_map
      (fun (_, rn, pa) ->
        List.map
          (fun (i : Analysis.Determinism.issue) ->
            { i with
              Analysis.Determinism.signal = rn i.Analysis.Determinism.signal;
              branch_a = rn i.Analysis.Determinism.branch_a;
              branch_b = rn i.Analysis.Determinism.branch_b })
          pa.pa_determinism.Analysis.Determinism.issues)
      instance_units
    @ ga.ga_determinism.Analysis.Determinism.issues
  in
  let determinism =
    { Analysis.Determinism.issues = det_issues;
      deterministic = det_issues = [] }
  in
  let cycles =
    List.concat_map
      (fun (_, rn, pa) ->
        List.map
          (fun (c : Analysis.Deadlock.cycle) ->
            { c with
              Analysis.Deadlock.signals =
                List.map rn c.Analysis.Deadlock.signals })
          pa.pa_deadlock.Analysis.Deadlock.cycles)
      instance_units
    @ ga.ga_deadlock.Analysis.Deadlock.cycles
  in
  let deadlock =
    { Analysis.Deadlock.cycles;
      deadlock_free =
        not (List.exists (fun c -> c.Analysis.Deadlock.feasible) cycles) }
  in
  let conflicts =
    List.concat_map
      (fun ((l : Signal_lang.Normalize.link), _, pa) ->
        List.map
          (fun m ->
            Printf.sprintf "in instance %s: %s"
              l.Signal_lang.Normalize.l_label m)
          pa.pa_conflicts)
      instance_units
    @ ga.ga_conflicts
  in
  let consistent =
    ga.ga_consistent
    && List.for_all (fun (_, _, pa) -> pa.pa_consistent) instance_units
  in
  let nulls =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.replace seen x ();
          true
        end)
      (List.concat_map
         (fun (_, rn, pa) -> List.map rn pa.pa_null)
         instance_units
      @ ga.ga_null)
  in
  let diags =
    let c = Putil.Diag.collector () in
    List.iter
      (fun m ->
        Putil.Diag.add c
          (Putil.Diag.errorf ~code:Clocks.Calculus.code_conflict "%s" m))
      conflicts;
    if not consistent then
      Putil.Diag.add c
        (Putil.Diag.errorf ~code:Clocks.Calculus.code_inconsistent
           "clock constraint system is unsatisfiable: no behaviour has \
            any signal present");
    (* a failed schedule or task extraction is stubbed with
       never-present events, so null-clock notes would only echo a
       defect already reported — drop them then *)
    if not stubbed then
      List.iter
        (fun x ->
          Putil.Diag.add c
            (Putil.Diag.notef ~code:Clocks.Calculus.code_null
               "signal %s has a provably empty clock (never present)" x))
        nulls;
    Putil.Diag.result c
    @ Analysis.Determinism.diags_of_report determinism
    @ Analysis.Deadlock.diags_of_report deadlock
  in
  { a_procs = pas; a_glue = ga; a_determinism = determinism;
    a_deadlock = deadlock; a_diags = diags }

(* Every layer contributes to one collector, so independent defects —
   an AADL legality error, a type error in the generated program and an
   infeasible thread set — are all reported in a single run. The
   result is [Error] only when a stage failure prevents building the
   full record; the accumulated diagnostics (including warnings and
   notes from the analyses) otherwise ride in [analyzed.diags]. *)
let analyze_package ?session ?(registry = Trans.Behavior.empty) ?policy ?mode
    ?(context = []) ?file ~root pkg =
  in_session_scope session @@ fun () ->
  Putil.Tracing.with_span "pipeline.analyze"
    ~args:[ ("root", Putil.Tracing.Astr root) ]
  @@ fun () ->
  let diags = Putil.Diag.collector () in
  let fail () = Error (Putil.Diag.result diags) in
  let slot f = Option.map f session in
  let store = session_store session in
  let aadl_issues =
    List.concat_map Aadl.Check.check_package (pkg :: context)
  in
  Putil.Diag.add_list diags (Aadl.Check.to_diags ?file aadl_issues);
  match
    stage_r "instantiate"
      (slot (fun s -> s.s_instance))
      (digest_of (file, root, pkg, context))
      (fun () -> Aadl.Instance.instantiate_diag ?file ~context pkg ~root)
  with
  | Error ds ->
    Putil.Diag.add_list diags ds;
    fail ()
  | Ok instance -> (
    match
      stage_r "translate"
        (slot (fun s -> s.s_translate))
        (digest_of (instance, policy, mode, file)
        ^ ":" ^ Trans.Behavior.id registry)
        (fun () ->
          match
            Trans.System_trans.translate_diag ?file ~registry ?policy
              ?mode instance
          with
          | Some translation, tdiags -> Ok (translation, tdiags)
          | None, tdiags -> Error tdiags)
    with
    | Error tdiags ->
      Putil.Diag.add_list diags tdiags;
      fail ()
    | Ok (translation, tdiags) -> (
      Putil.Diag.add_list diags tdiags;
      let program = translation.Trans.System_trans.program in
      let program_key = Signal_lang.Ast.program_digest program in
      let top = translation.Trans.System_trans.top in
      let typecheck_errors, typed_program =
        stage_pu "typecheck"
          (slot (fun s -> s.s_typecheck))
          store program_key
          ~units:(fun (_, tp) -> List.length tp.Ast.processes)
          (fun () ->
            (* keyed on (own body × interface environment): a body edit
               in one process reruns only that process's check *)
            let iface_key =
              digest_of (List.map iface_of program.Ast.processes)
            in
            let per_proc =
              List.map
                (fun p ->
                  proc_unit "typecheck"
                    (slot (fun s -> s.s_tc_procs))
                    store "typecheck.proc" p.Ast.proc_name
                    (Digest.to_hex (Ast.process_digest p) ^ ":" ^ iface_key)
                    (fun () ->
                      ( Signal_lang.Typecheck.check_process ~program p,
                        Signal_lang.Typecheck.type_process p )))
                program.Ast.processes
            in
            ( List.concat_map fst per_proc,
              { Ast.prog_name = program.Ast.prog_name;
                Ast.processes = List.map snd per_proc } ))
      in
      Putil.Diag.add_list diags
        (List.map
           (diag_of_type_error ?file ~translation ~instance)
           typecheck_errors);
      match
        stage_rpu "normalize"
          (slot (fun s -> s.s_normalize))
          store
          (program_key ^ ":" ^ top.Ast.proc_name)
          ~units:(fun n -> List.length n.n_models)
          (fun () ->
            (* normalize each model once, keyed on its dependency
               closure, then link the cached kernels into the host *)
            let models =
              List.filter
                (fun p ->
                  (not (String.equal p.Ast.proc_name top.Ast.proc_name))
                  && p.Ast.params = [])
                program.Ast.processes
            in
            let precomputed =
              List.filter_map
                (fun m ->
                  Option.map
                    (fun k -> (m.Ast.proc_name, k))
                    (proc_unit "normalize"
                       (slot (fun s -> s.s_kernels))
                       store "normalize.proc" m.Ast.proc_name
                       (model_key program m)
                       (fun () ->
                         Result.to_option
                           (Signal_lang.Normalize.process ~program m))))
                models
            in
            Result.map
              (fun (lk : Signal_lang.Normalize.linked) ->
                { n_kernel = lk.Signal_lang.Normalize.lk_kernel;
                  n_glue = lk.Signal_lang.Normalize.lk_glue;
                  n_links = lk.Signal_lang.Normalize.lk_links;
                  n_models = precomputed;
                  (* the profile and the kernel digest ride in the
                     stage value so replays (slot or store) never
                     recompute them *)
                  n_profile =
                    Analysis.Profiling.static_costs
                      lk.Signal_lang.Normalize.lk_kernel;
                  n_kdigest =
                    K.digest lk.Signal_lang.Normalize.lk_kernel })
              (Signal_lang.Normalize.process_linked ~program ~precomputed
                 top))
      with
      | Error d ->
        Putil.Diag.add diags d;
        fail ()
      | Ok n ->
          let kernel = n.n_kernel in
        Putil.Metrics.set m_profile_total
          n.n_profile.Analysis.Profiling.total_static;
        Putil.Metrics.set m_profile_signals
          (List.length n.n_profile.Analysis.Profiling.per_signal);
        let stubbed = Putil.Diag.has_errors tdiags in
        let an =
          stage_pu "analyses"
            (slot (fun s -> s.s_analyses))
            store
            (n.n_kdigest ^ if stubbed then ":stub" else "")
            ~units:(fun an -> List.length an.a_procs + 1 (* glue *))
            (fun () ->
              let model_names =
                List.sort_uniq compare
                  (List.map
                     (fun (l : Signal_lang.Normalize.link) ->
                       l.Signal_lang.Normalize.l_model)
                     n.n_links)
              in
              let pas =
                List.filter_map
                  (fun name ->
                    Option.map
                      (fun km ->
                        ( name,
                          proc_unit "analyses"
                            (slot (fun s -> s.s_panas))
                            store "analysis.proc" name (K.digest km)
                            (fun () -> proc_analysis_of km) ))
                      (List.assoc_opt name n.n_models))
                  model_names
              in
              let glue', extra_edges =
                glue_with_summaries n.n_glue n.n_links pas
              in
              let ga =
                proc_unit "analyses"
                  (slot (fun s -> s.s_glue))
                  store "analysis.glue" "glue"
                  (digest_of (K.digest glue', extra_edges))
                  (fun () -> glue_analysis_of glue' extra_edges)
              in
              merge_analyses ~stubbed n.n_links pas ga)
        in
          Putil.Diag.add_list diags an.a_diags;
        let calc = lazy (Clocks.Calculus.analyze kernel) in
        let hierarchy = lazy (Clocks.Hierarchy.build (Lazy.force calc)) in
        let clocked_decls =
          lazy (Clocks.Calculus.clocked_decls (Lazy.force calc))
        in
        Ok
          { package = pkg; aadl_issues; instance; translation; kernel;
            glue_kernel = n.n_glue; links = n.n_links;
            proc_analyses = an.a_procs; glue = an.a_glue; typed_program;
            clocked_decls; calc; hierarchy;
            determinism = an.a_determinism; deadlock = an.a_deadlock;
            typecheck_errors; diags = Putil.Diag.result diags;
            scope = Option.map (fun s -> s.s_label) session }))

let analyze ?session ?registry ?policy ?mode ?root ?file src =
  in_session_scope session @@ fun () ->
  let* pkgs =
    stage_rp "parse"
      (Option.map (fun s -> s.s_parse) session)
      (session_store session)
      (Digest.to_hex
         (Digest.string (Option.value ~default:"" file ^ "\x00" ^ src)))
      (fun () -> Aadl.Parser.parse_packages_diag ?file src)
  in
  let* pkg, root =
    match root with
    | Some r -> (
      (* find the package defining the root *)
      let tname = Aadl.Syntax.impl_base_name r in
      match
        List.find_opt
          (fun p -> Aadl.Syntax.find_type p tname <> None)
          pkgs
      with
      | Some p -> Ok (p, r)
      | None -> (
        match pkgs with
        | p :: _ -> Ok (p, r)
        | [] ->
          Error [ Putil.Diag.errorf ~code:code_root "no package" ]))
    | None ->
      Result.map_error
        (fun m -> [ Putil.Diag.errorf ~code:code_root "%s" m ])
        (default_root pkgs)
  in
  let context = List.filter (fun p -> p != pkg) pkgs in
  analyze_package ?session ?registry ?policy ?mode ~context ?file ~root
    pkg

(* Schedulers on different processors may use different base ticks;
   simulation advances on their gcd and pulses each processor's tick at
   its own cadence. *)
let global_base_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds ->
    let g =
      Putil.Mathx.gcd_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.base_us) scheds)
    in
    max 1 g

let global_hyper_us a =
  match a.translation.Trans.System_trans.schedules with
  | [] -> 1
  | scheds -> (
    match
      Putil.Mathx.lcm_list
        (List.map (fun (_, s) -> s.Sched.Static_sched.hyperperiod_us) scheds)
    with
    | hp -> hp
    | exception Putil.Mathx.Overflow m ->
      invalid_arg ("Pipeline.global_hyper_us: " ^ m))

let base_ticks_per_hyperperiod a = global_hyper_us a / global_base_us a

let default_env a t =
  if t = 0 then
    List.map
      (fun n -> (n, 1))
      a.translation.Trans.System_trans.env_inputs
  else []

(* Static reaction cost of one thread: its signals are exactly those
   prefixed by its local name in the generated program. *)
let thread_cost a =
  let costs = (Analysis.Profiling.static_costs a.kernel).Analysis.Profiling.per_signal in
  fun task_name ->
    let prefix =
      Trans.System_trans.local_name
        a.instance.Aadl.Instance.root.Aadl.Instance.i_path task_name
      ^ "_"
    in
    List.fold_left
      (fun acc (s, c) ->
        if String.length s >= String.length prefix
           && String.sub s 0 (String.length prefix) = prefix
        then acc + c
        else acc)
      0 costs

(* Name-based stimulus generator for one run: ticks at each
   processor's base cadence, External-mode ctl events from the
   schedule tables, plus the environment arrivals. *)
let stimulus_at_fn a env =
  let gbase = global_base_us a in
  (* tick inputs are generated in schedule order; pulse each at its
     processor's base cadence (External mode declares no ticks) *)
  let ticks =
    let rec zip tks ss =
      match tks, ss with
      | tk :: tks, (_, s) :: ss ->
        (tk, s.Sched.Static_sched.base_us / gbase) :: zip tks ss
      | _, _ -> []
    in
    zip a.translation.Trans.System_trans.tick_inputs
      a.translation.Trans.System_trans.schedules
  in
  (* External-mode ctl inputs are driven straight from the schedule
     tables, replicating the Embedded scheduler process semantics: at
     processor base tick m, an event with offset tk fires iff m >= tk
     and m ≡ tk (mod horizon) *)
  let ctls =
    List.map
      (fun (n, spec) ->
        let stride =
          match
            List.assoc_opt spec.Trans.System_trans.cs_cpu
              a.translation.Trans.System_trans.schedules
          with
          | Some s -> max 1 (s.Sched.Static_sched.base_us / gbase)
          | None -> 1
        in
        ( n, stride,
          Array.of_list spec.Trans.System_trans.cs_ticks,
          spec.Trans.System_trans.cs_horizon ))
      a.translation.Trans.System_trans.ctl_inputs
  in
  fun t ->
    List.filter_map
      (fun (tk, every) ->
        if t mod every = 0 then Some (tk, Types.Vevent) else None)
      ticks
    @ List.filter_map
        (fun (n, stride, offs, horizon) ->
          if t mod stride <> 0 then None
          else
            let m = t / stride in
            if
              Array.exists
                (fun tk -> m >= tk && (m - tk) mod horizon = 0)
                offs
            then Some (n, Types.Vevent)
            else None)
        ctls
    @ List.map (fun (n, v) -> (n, Types.Vint v)) (env t)

(* Resolve a name-based stimulus into a compiled instance's dense
   buffer. Non-input names error through the normal result path of the
   enclosing batched call; unknown names raise. *)
exception Unknown_input of string

let fill_stimulus c stim =
  List.iter
    (fun (x, v) ->
      match Polysim.Compile.signal_index c x with
      | Some i -> Polysim.Compile.set_stim c i v
      | None -> raise (Unknown_input x))
    stim

let simulate ?(compiled = false) ?env ?(hyperperiods = 2) a =
  in_analyzed_scope a @@ fun () ->
  let env = Option.value ~default:(default_env a) env in
  let horizon = base_ticks_per_hyperperiod a * hyperperiods in
  Putil.Tracing.with_span "pipeline.simulate"
    ~args:
      [ ("compiled", Putil.Tracing.Abool compiled);
        ("horizon_ticks", Putil.Tracing.Aint horizon) ]
  @@ fun () ->
  let gbase = global_base_us a in
  let stimulus_at = stimulus_at_fn a env in
  let finish tr =
    if Putil.Tracing.enabled () then
      Timeline.emit ~cost:(thread_cost a)
        ~root_path:a.instance.Aadl.Instance.root.Aadl.Instance.i_path
        ~base_us:gbase ~horizon_ticks:horizon
        ~schedules:a.translation.Trans.System_trans.schedules
        ~tasks:a.translation.Trans.System_trans.tasks tr;
    tr
  in
  let run step trace =
    let rec go t =
      if t >= horizon then Ok (finish (trace ()))
      else
        match step ~stimulus:(stimulus_at t) with
        | Ok _ -> go (t + 1)
        | Error m ->
          Error
            [ Putil.Diag.errorf ~code:code_sim "instant %d: %s" t m ]
    in
    go 0
  in
  if compiled then
    match Polysim.Compile.compile a.kernel with
    | Error m ->
      Error [ Putil.Diag.errorf ~code:code_compile "compile: %s" m ]
    | Ok c -> (
      (* dense batched stepping: the whole horizon in one call, no
         per-instant assoc lists *)
      match
        Polysim.Compile.run_batched c ~n:horizon
          ~fill:(fun c t -> fill_stimulus c (stimulus_at t))
      with
      | Ok () -> Ok (finish (Polysim.Compile.trace c))
      | Error m ->
        Error
          [ Putil.Diag.errorf ~code:code_sim "instant %d: %s"
              (Polysim.Compile.instant c) m ]
      | exception Unknown_input x ->
        Error
          [ Putil.Diag.errorf ~code:code_sim
              "stimulus for unknown signal %s" x ])
  else
    let engine = Polysim.Engine.create a.kernel in
    run (fun ~stimulus -> Polysim.Engine.step engine ~stimulus)
      (fun () -> Polysim.Engine.trace engine)

(* Per-scenario default environment: scenario [s] delays every
   environment arrival by [s] base ticks (mod the horizon), so a sweep
   covers the arrival phases of the environment; scenario 0 is exactly
   {!default_env}. *)
let scenario_env a ~horizon s t =
  if t = s mod horizon then
    List.map (fun n -> (n, 1)) a.translation.Trans.System_trans.env_inputs
  else []

let simulate_scenarios ?envs ?(hyperperiods = 2) ~scenarios a =
  in_analyzed_scope a @@ fun () ->
  let horizon = base_ticks_per_hyperperiod a * hyperperiods in
  let envs =
    match envs with
    | Some f -> f
    | None -> scenario_env a ~horizon
  in
  Putil.Tracing.with_span "pipeline.simulate_scenarios"
    ~args:
      [ ("scenarios", Putil.Tracing.Aint scenarios);
        ("horizon_ticks", Putil.Tracing.Aint horizon) ]
  @@ fun () ->
  match Polysim.Compile.compile_scenarios a.kernel ~scenarios with
  | Error m ->
    Error [ Putil.Diag.errorf ~code:code_compile "compile: %s" m ]
  | Ok c -> (
    let stim_of =
      Array.init scenarios (fun s -> stimulus_at_fn a (envs s))
    in
    let rec go t =
      if t >= horizon then
        Ok (Array.init scenarios (Polysim.Compile.trace_of c))
      else
        match
          Polysim.Compile.step_many c
            ~fill:(fun c s -> fill_stimulus c (stim_of.(s) t))
        with
        | Ok () -> go (t + 1)
        | Error m ->
          Error [ Putil.Diag.errorf ~code:code_sim "instant %d: %s" t m ]
    in
    match go 0 with
    | r -> r
    | exception Unknown_input x ->
      Error
        [ Putil.Diag.errorf ~code:code_sim "stimulus for unknown signal %s"
            x ])

(* ------------------------------------------------------------------ *)
(* Bounded verification                                                *)

type verify_engine = [ `Explicit | `Symbolic | `Auto ]

let verify_inputs a =
  let tr = a.translation in
  (* ticks always present; every environment input may arrive (value
     1) or stay silent at each instant *)
  List.map
    (fun tk -> (tk, [ Some Signal_lang.Types.Vevent ]))
    tr.Trans.System_trans.tick_inputs
  @ List.map
      (fun e -> (e, [ None; Some (Signal_lang.Types.Vint 1) ]))
      tr.Trans.System_trans.env_inputs

let verify_kernel ?(depth = 8) ?jobs ?(engine = `Auto) ~never ~inputs kp =
  let prop = Polysim.Symbolic.Never_present never in
  let explicit () =
    match
      Polysim.Explore.check ~depth ?jobs ~inputs
        ~safe:(Polysim.Symbolic.safe_of_prop prop) kp
    with
    | Ok (v, n) -> Ok (v, n, `Explicit)
    | Error d -> Error d
  in
  let symbolic () =
    match Polysim.Explore.check_symbolic ~depth ~inputs ~prop kp with
    | Ok (v, n) -> Ok (v, n, `Symbolic)
    | Error d -> Error d
  in
  match engine with
  | `Explicit -> explicit ()
  | `Symbolic -> symbolic ()
  | `Auto -> (
    match symbolic () with
    | Error d when d.Putil.Diag.code = Polysim.Symbolic.code_unsupported ->
      explicit ()
    | r -> r)

let verify ?depth ?jobs ?engine ~never a =
  in_analyzed_scope a @@ fun () ->
  verify_kernel ?depth ?jobs ?engine ~never ~inputs:(verify_inputs a)
    a.kernel

let vcd_of_trace ?signals a tr =
  let module_name = a.translation.Trans.System_trans.top.Ast.proc_name in
  (* one logical instant = one global base tick; dump real model time
     so VCD cursors line up with the schedule tables *)
  Polysim.Vcd.to_string ?signals ~module_name ~instant_us:(global_base_us a) tr

let with_tracing ?(format = `Chrome) ~trace_file f =
  Putil.Tracing.reset ();
  Putil.Tracing.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Putil.Tracing.set_enabled false;
      Putil.Tracing.write ~format trace_file)
    f

let pp_summary ppf a =
  Format.fprintf ppf "@[<v>== AADL legality ==@,";
  (match a.aadl_issues with
   | [] -> Format.fprintf ppf "no issues@,"
   | issues ->
     List.iter
       (fun i -> Format.fprintf ppf "%a@," Aadl.Check.pp_issue i)
       issues);
  Format.fprintf ppf "@,== schedules ==@,";
  List.iter
    (fun (cpu, s) ->
      Format.fprintf ppf "processor %s:@,%a@," cpu
        Sched.Static_sched.pp_schedule s)
    a.translation.Trans.System_trans.schedules;
  Format.fprintf ppf "@,== clock calculus ==@,%a@," Clocks.Calculus.pp_summary
    (Lazy.force a.calc);
  Format.fprintf ppf "clock hierarchy roots: %d, depth: %d@,"
    (List.length (Clocks.Hierarchy.roots (Lazy.force a.hierarchy)))
    (Clocks.Hierarchy.depth (Lazy.force a.hierarchy));
  Format.fprintf ppf "@,== determinism ==@,%a@,"
    Analysis.Determinism.pp_report a.determinism;
  Format.fprintf ppf "@,== deadlock ==@,%a@," Analysis.Deadlock.pp_report
    a.deadlock;
  (match Polysim.Compile.compile a.kernel with
   | Ok c ->
     let free = Polysim.Compile.free_classes c in
     if free = 0 then
       Format.fprintf ppf
         "@,endochrony: every clock is derivable — the program runs on \
          its synthesized tick@,"
     else
       Format.fprintf ppf
         "@,endochrony: %d free synchronization class(es): %s@," free
         (String.concat ", " (Polysim.Compile.free_class_members c))
   | Error m -> Format.fprintf ppf "@,not compilable: %s@," m);
  (match a.typecheck_errors with
   | [] -> Format.fprintf ppf "@,SIGNAL program is well-typed@,"
   | errs ->
     Format.fprintf ppf "@,SIGNAL type errors:@,";
     List.iter
       (fun e ->
         Format.fprintf ppf "  %s@," (Signal_lang.Typecheck.error_to_string e))
       errs);
  Format.fprintf ppf "@,== run metrics ==@,%a@," Putil.Metrics.pp
    Putil.Metrics.global;
  Format.fprintf ppf "@]"

let pp_stats ppf () =
  Format.fprintf ppf "@[<v>== run metrics ==@,%a@]" Putil.Metrics.pp
    Putil.Metrics.global

let stats_json () = Putil.Metrics.to_json Putil.Metrics.global
