(** The ProducerConsumer avionic case study (C-S Toulouse / OPEES),
    reconstructed from the paper's Sec. II and V.

    Threads and periods follow the paper: thProducer 4 ms, thConsumer
    6 ms, thProdTimer and thConsTimer 8 ms (instances of a common
    timer-service thread). The producer and consumer exchange data
    through the shared [Queue]; each owns a timer that raises
    [pTimeOut] toward the operator display when production/consumption
    takes too long. *)

val aadl_source : string
(** The full AADL package text (also available as
    [examples/producer_consumer.aadl]). *)

val root : string
(** Name of the root system implementation, ["ProdConsSys.impl"]. *)

val package : unit -> Aadl.Syntax.package
(** Parsed package (memoized). @raise Failure on a parse error, which
    would be a bug. *)

val instance : unit -> Aadl.Instance.t
(** Instantiated system (memoized). *)

val registry_nominal : Trans.Behavior.registry
(** Production behaviour: the producer/consumer (re)arm their timer at
    every job and stop it in the same job — timers never expire, no
    alarm is raised. *)

val registry_timeout : Trans.Behavior.registry
(** Fault-injection behaviour: the producer and consumer arm their
    timers once and never stop them, so both timers expire after
    [Timer_Duration] timer dispatches and [pTimeOut] events reach the
    operator display — the scenario the timers exist for. *)

val registry_producer_variant : Trans.Behavior.registry
(** [registry_nominal] with exactly one thread's behaviour changed:
    the producer arms its timer only at job 1. A one-process edit
    fixture for the per-process incremental-recompute tests — every
    other generated model is identical to the nominal one. *)

val thread_periods_us : (string * int) list
(** Thread base names with their paper periods, in µs. *)
