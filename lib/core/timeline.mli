(** Logical-time schedule lanes for {!Putil.Tracing}: one lane per
    AADL thread, carrying the thread's dispatch, input-freeze, compute
    (start → complete), output-send and deadline events over the
    simulated horizon, plus deadline-miss markers.

    The lanes land on the tracing registry's schedule track (pid 2 in
    the Chrome export) in microseconds of {e logical} time, next to the
    host-time toolchain spans — the two-track model of DESIGN.md §9.

    The timeline is reconstructed from an {e actual} simulation trace:
    the generated program's scheduler processes pulse one ctl event
    signal per thread and phase ([<prefix>_dispatch], [_start],
    [_complete], [_deadline]) and an [_alarm] on deadline overrun, and
    every presence instant maps to [instant × base_us] microseconds.
    When a trace lacks the ctl signals (stubbed scheduler after an
    infeasibility diagnostic, hand-written program), lanes fall back to
    replicating the static schedule over the simulated horizon. *)

val emit :
  ?cost:(string -> int) ->
  root_path:string ->
  base_us:int ->
  horizon_ticks:int ->
  schedules:(string * Sched.Static_sched.schedule) list ->
  tasks:(string * Sched.Task.t list) list ->
  Polysim.Trace.t ->
  unit
(** [emit ~root_path ~base_us ~horizon_ticks ~schedules ~tasks tr]
    records one lane per task of [tasks] (lane = the thread's short
    name, e.g. [thProducer]). [root_path] is the instance root used to
    derive signal prefixes ({!Trans.System_trans.local_name});
    [base_us] the global base tick in µs; [horizon_ticks] the simulated
    length of [tr] in base ticks. [cost] optionally attaches a static
    reaction cost (from {!Analysis.Profiling}) as an argument of each
    compute span, keyed by task name. No-op when tracing is
    disabled. *)
