(** Traceability between AADL model elements and generated SIGNAL
    signals/processes (paper Sec. IV-E: names preserved as names or in
    annotations).

    Entries are keyed on interned per-category UIDs ({!Putil.Uid}):
    AADL component instances ({!Putil.Uid.Thread}) and feature
    instances ({!Putil.Uid.Port}) on one side, generated SIGNAL
    signals ({!Putil.Uid.Signal}) on the other. The string-based API
    interns on the fly, so existing callers keep working on names. *)

type t

(** Which kind of AADL element an entry points at. *)
type aadl_key =
  | Kcomponent of Putil.Uid.Thread.t
      (** a component instance (thread, data, processor…), keyed by
          instance path *)
  | Kport of Putil.Uid.Port.t
      (** a feature instance, keyed by feature path *)

val create : unit -> t

(** {1 Typed API} *)

val add_component :
  t -> aadl:Putil.Uid.Thread.t -> signal:Putil.Uid.Signal.t -> unit

val add_port :
  t -> aadl:Putil.Uid.Port.t -> signal:Putil.Uid.Signal.t -> unit

val signal_uid_of : t -> aadl_key -> Putil.Uid.Signal.t option
val aadl_key_of : t -> Putil.Uid.Signal.t -> aadl_key option

val typed_entries : t -> (aadl_key * Putil.Uid.Signal.t) list
(** UID-keyed pairs in insertion order. *)

(** {1 String compatibility API} *)

val add : t -> aadl:string -> signal:string -> unit
(** Records the pair as a component entry (interning both sides). *)

val signal_of : t -> string -> string option
val aadl_of : t -> string -> string option

val entries : t -> (string * string) list
(** (aadl path, signal name) pairs in insertion order. *)

val pp : Format.formatter -> t -> unit
