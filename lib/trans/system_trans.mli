(** ASME2SSME top-level assembly.

    Builds the complete SIGNAL program for an AADL system instance:

    - one SIGNAL process model per thread ({!Thread_trans});
    - one scheduler process model per processor, synthesized from the
      bound threads' timing properties ({!Sched_trans});
    - one top-level process instantiating schedulers, threads and
      shared-data FIFOs (Fig. 6) and wiring semantic connections;
      environment components (systems/devices without behaviour) have
      their ports lifted to top-level inputs/outputs;
    - the ctl/time bundles: in-port Frozen_time defaults to the
      thread's Dispatch, out-port Output_time to Complete for immediate
      connections and Deadline for delayed ones (Sec. IV-A), both
      overridable with Input_Time/Output_Time properties;
    - a top [Alarm] output merging every thread's deadline alarm.

    The result records the synthesized schedules and a traceability
    table from AADL paths to SIGNAL names. *)

(** How the synthesized schedules reach the generated program.

    [Embedded] (the default, the paper's construction) synthesizes one
    SIGNAL scheduler process per processor and instantiates it in the
    top process. [External] omits the scheduler processes: every
    task's ctl events ([_dispatch]/[_start]/[_complete]/[_deadline])
    become top-level {e inputs}, and [ctl_inputs] records when each
    must be driven. The External program is invariant under
    timing-only model edits (a period change alters only the schedule
    tables), which is what makes digest-driven incremental recompute
    effective — see {!Polychrony.Pipeline}. *)
type mode = Embedded | External

(** When an External-mode ctl input fires, in schedule base ticks: at
    base tick [m] of its processor iff there is [t] in [cs_ticks] with
    [m >= t] and [m ≡ t (mod cs_horizon)] — the same semantics as the
    Embedded scheduler process, including deadlines wrapping past the
    hyper-period. *)
type ctl_spec = {
  cs_cpu : string;     (** processor instance path *)
  cs_ticks : int list; (** firing offsets, in schedule base ticks *)
  cs_horizon : int;    (** hyper-period, in schedule base ticks *)
}

type output = {
  program : Signal_lang.Ast.program;
  top : Signal_lang.Ast.process;      (** also contained in [program] *)
  schedules : (string * Sched.Static_sched.schedule) list;
      (** per processor instance path *)
  tasks : (string * Sched.Task.t list) list;
      (** task sets per processor, as extracted from the AADL model *)
  trace : Traceability.t;
  tick_inputs : string list;          (** one tick input per processor *)
  env_inputs : string list;           (** lifted environment out ports *)
  env_outputs : string list;          (** lifted environment in ports *)
  ctl_inputs : (string * ctl_spec) list;
      (** External mode only: ctl events to drive, in declaration
          order; empty in Embedded mode *)
}

val translate :
  ?registry:Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:mode ->
  Aadl.Instance.t ->
  (output, string) result
(** Fails when a process is not bound to any processor, when a thread
    lacks the timing properties needed for scheduling, or when no valid
    schedule exists under the chosen policy. The error string is the
    compact rendering of the structured diagnostics; prefer
    {!translate_diag} in new code. *)

val translate_diag :
  ?file:string ->
  ?registry:Behavior.registry ->
  ?policy:Sched.Static_sched.policy ->
  ?mode:mode ->
  Aadl.Instance.t ->
  output option * Putil.Diag.t list
(** Accumulating translation. Recoverable defects — a thread whose
    timing properties cannot form a task ([TRANS-003] or
    [SCHED-TASK-001]), a processor with no feasible schedule
    ([SCHED-INFEAS-001]) — are reported {e and} translation continues
    with placeholder tasks or never-present scheduler stubs, so one
    defect does not mask the others; the output is [Some] even then.
    [None] is returned only for fatal defects ([TRANS-004], allocation
    failure, or a behaviour/mode defect raised by {!Thread_trans}).
    [file] names the AADL source in diagnostic spans. *)

val sanitize : string -> string
(** Instance path as a SIGNAL identifier fragment (dots to
    underscores). *)

val local_name : string -> string -> string
(** [local_name root_path path]: the sanitized path without the root
    component — the prefix under which a thread's ctl signals
    ([<prefix>_dispatch], [_start], [_complete], [_deadline],
    [_alarm], [_done]) and port signals appear in the generated
    program. *)

val task_of_thread : Aadl.Instance.instance -> (Sched.Task.t, string) result
(** Extract the scheduler task (period, deadline, WCET in µs) from a
    thread instance's properties. WCET defaults to the largest value
    that divides the other parameters when absent: the
    Compute_Execution_Time property is strongly recommended. *)

val task_of_thread_diag :
  ?file:string ->
  Aadl.Instance.instance ->
  (Sched.Task.t, Putil.Diag.t) result
(** Like {!task_of_thread}, but the failure is a [TRANS-003] (missing
    or unschedulable dispatch properties) or [SCHED-TASK-001]
    (inconsistent timing values) diagnostic spanning the thread's
    declaration site. *)
