module Symbol = Putil.Symbol

(* Both directions of the mapping are kept as symbol-indexed tables:
   names are interned once on [add] and the lookups are dense int
   indexing, not string hashing. The public API stays string-based. *)
type t = {
  mutable pairs : (Symbol.t * Symbol.t) list;  (* reversed *)
  by_aadl : Symbol.t option Symbol.Tbl.t;
  by_signal : Symbol.t option Symbol.Tbl.t;
}

let create () =
  { pairs = [];
    by_aadl = Symbol.Tbl.create None;
    by_signal = Symbol.Tbl.create None }

let add t ~aadl ~signal =
  let a = Symbol.of_string aadl and s = Symbol.of_string signal in
  t.pairs <- (a, s) :: t.pairs;
  Symbol.Tbl.set t.by_aadl a (Some s);
  Symbol.Tbl.set t.by_signal s (Some a)

let signal_of t aadl =
  Option.map Symbol.name (Symbol.Tbl.get t.by_aadl (Symbol.of_string aadl))

let aadl_of t signal =
  Option.map Symbol.name (Symbol.Tbl.get t.by_signal (Symbol.of_string signal))

let entries t =
  List.rev_map (fun (a, s) -> (Symbol.name a, Symbol.name s)) t.pairs

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a, s) -> Format.fprintf ppf "%-48s -> %s@," a s)
    (entries t);
  Format.fprintf ppf "@]"
