module Symbol = Putil.Symbol
module Uid = Putil.Uid

(* Entries are keyed on per-category UIDs (threads/components, ports,
   and the generated SIGNAL signals): translation records typed pairs,
   and the string API below interns on the fly for callers that only
   hold names. Lookup in either direction is dense int indexing over
   the category's id space, not string hashing. *)

type aadl_key =
  | Kcomponent of Uid.Thread.t  (* component instance path *)
  | Kport of Uid.Port.t         (* feature/port instance path *)

type t = {
  mutable pairs : (aadl_key * Uid.Signal.t) list;  (* reversed *)
  by_component : Uid.Signal.t option Uid.Thread.Tbl.t;
  by_port : Uid.Signal.t option Uid.Port.Tbl.t;
  by_signal : aadl_key option Uid.Signal.Tbl.t;
}

let create () =
  { pairs = [];
    by_component = Uid.Thread.Tbl.create None;
    by_port = Uid.Port.Tbl.create None;
    by_signal = Uid.Signal.Tbl.create None }

let add_key t key signal =
  t.pairs <- (key, signal) :: t.pairs;
  (match key with
   | Kcomponent c -> Uid.Thread.Tbl.set t.by_component c (Some signal)
   | Kport p -> Uid.Port.Tbl.set t.by_port p (Some signal));
  Uid.Signal.Tbl.set t.by_signal signal (Some key)

let add_component t ~aadl ~signal = add_key t (Kcomponent aadl) signal
let add_port t ~aadl ~signal = add_key t (Kport aadl) signal

(* string compatibility path: component paths and feature paths live in
   disjoint sets in an instance tree, so classifying by what was
   recorded first is unambiguous *)
let add t ~aadl ~signal =
  add_component t ~aadl:(Uid.Thread.intern aadl)
    ~signal:(Uid.Signal.intern signal)

let signal_uid_of t key =
  match key with
  | Kcomponent c -> Uid.Thread.Tbl.get t.by_component c
  | Kport p -> Uid.Port.Tbl.get t.by_port p

let aadl_key_of t signal = Uid.Signal.Tbl.get t.by_signal signal

let key_name = function
  | Kcomponent c -> Uid.Thread.name c
  | Kport p -> Uid.Port.name p

let signal_of t aadl =
  let as_component =
    Uid.Thread.Tbl.get t.by_component (Uid.Thread.intern aadl)
  in
  let found =
    match as_component with
    | Some _ -> as_component
    | None -> Uid.Port.Tbl.get t.by_port (Uid.Port.intern aadl)
  in
  Option.map Uid.Signal.name found

let aadl_of t signal =
  Option.map key_name (aadl_key_of t (Uid.Signal.intern signal))

let entries t =
  List.rev_map
    (fun (k, s) -> (key_name k, Uid.Signal.name s))
    t.pairs

let typed_entries t = List.rev t.pairs

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a, s) -> Format.fprintf ppf "%-48s -> %s@," a s)
    (entries t);
  Format.fprintf ppf "@]"
