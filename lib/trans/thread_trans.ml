module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module Syn = Aadl.Syntax
module Inst = Aadl.Instance

(* Stable translation error codes. *)
let code_mode =
  Putil.Diag.code "TRANS-001" "mode automaton cannot be translated"
let code_iface =
  Putil.Diag.code "TRANS-002"
    "behaviour references a port or access the thread does not declare"

(* Raised on defects in the translated model (as opposed to caller
   bugs, which keep raising Invalid_argument). *)
exception Trans_diag of Putil.Diag.t

let fail ?loc ~code fmt =
  Format.kasprintf
    (fun m ->
      let span =
        match loc with
        | Some l when l.Syn.l_line > 0 ->
          Some (Putil.Diag.span ~line:l.Syn.l_line ~col:l.Syn.l_col ())
        | Some _ | None -> None
      in
      raise (Trans_diag (Putil.Diag.errorf ?span ~code "%s" m)))
    fmt

let sanitize path = String.map (fun c -> if c = '.' then '_' else c) path

let process_name inst = "th_" ^ sanitize inst.Inst.i_path

let port_queue_size f =
  match f with
  | Syn.Port { fprops; _ } -> (
    match Aadl.Props.queue_size fprops with
    | Some n when n > 0 -> n
    | Some _ | None -> 1)
  | Syn.Data_access _ | Syn.Subprogram_access _ -> 1

let port_overflow f =
  match f with
  | Syn.Port { fprops; _ } -> (
    match Aadl.Props.overflow_protocol fprops with
    | Some Aadl.Props.Drop_oldest | None -> "dropoldest"
    | Some Aadl.Props.Drop_newest -> "dropnewest"
    | Some Aadl.Props.Overflow_error -> "error")
  | Syn.Data_access _ | Syn.Subprogram_access _ -> "dropoldest"

let in_ports inst =
  List.filter_map
    (fun f ->
      match f with
      | Syn.Port { dir = Syn.Din | Syn.Dinout; fname; kind; _ } ->
        Some (fname, kind, port_queue_size f)
      | Syn.Port _ | Syn.Data_access _ | Syn.Subprogram_access _ -> None)
    inst.Inst.i_features

let out_ports inst =
  List.filter_map
    (fun f ->
      match f with
      | Syn.Port { dir = Syn.Dout | Syn.Dinout; fname; kind; _ } ->
        Some (fname, kind, port_queue_size f)
      | Syn.Port _ | Syn.Data_access _ | Syn.Subprogram_access _ -> None)
    inst.Inst.i_features

(* overflow protocol string of a port, by name *)
let overflow_of inst pname =
  match
    List.find_opt
      (fun f -> String.equal (Syn.feature_name f) pname)
      inst.Inst.i_features
  with
  | Some f -> port_overflow f
  | None -> "dropoldest"

let accesses inst =
  List.filter_map
    (function
      | Syn.Data_access { fname; right; _ } -> Some (fname, right)
      | Syn.Port _ | Syn.Subprogram_access _ -> None)
    inst.Inst.i_features

let read_accesses inst =
  List.filter_map
    (fun (n, r) ->
      match r with
      | Syn.Read_only | Syn.Read_write -> Some n
      | Syn.Write_only -> None)
    (accesses inst)

let write_accesses inst =
  List.filter_map
    (fun (n, r) ->
      match r with
      | Syn.Write_only | Syn.Read_write -> Some n
      | Syn.Read_only -> None)
    (accesses inst)

let translate_uncached ~registry inst =
  if inst.Inst.i_category <> Syn.Thread then
    invalid_arg "Thread_trans.translate: not a thread instance";
  let ins = in_ports inst and outs = out_ports inst in
  let reads = read_accesses inst and writes = write_accesses inst in
  let locals = ref [] in
  let stmts = ref [] in
  let fresh_counter = ref 0 in
  let declare name typ =
    locals := Ast.var name typ :: !locals;
    name
  in
  let fresh_local typ =
    incr fresh_counter;
    declare (Printf.sprintf "b%d" !fresh_counter) typ
  in
  let emit s = stmts := s :: !stmts in
  (* booleans marking control instants *)
  let start_b = declare "start_b" Types.Tbool in
  emit B.(start_b := when_ (b true) (clk (v "Start")));
  let deadline_b = declare "deadline_b" Types.Tbool in
  emit B.(deadline_b := when_ (b true) (clk (v "Deadline")));
  (* in ports: freeze at p_time, memorize at Start *)
  let frozen_at_start = Hashtbl.create 4 in
  let count_at_start = Hashtbl.create 4 in
  List.iter
    (fun (p, kind, qsize) ->
      match kind with
      | Syn.Event_port | Syn.Event_data_port ->
        let frz = declare (p ^ "_frozen") Types.Tint in
        let cnt = declare (p ^ "_count") Types.Tint in
        emit
          (B.inst
             ~params:[ Types.Vint qsize; Types.Vstring (overflow_of inst p) ]
             ~label:(p ^ "_port") "in_event_port"
             B.[ v p; v (p ^ "_time") ]
             [ frz; cnt ]);
        let at_start = declare (p ^ "_value") Types.Tint in
        emit
          (B.inst ~label:(p ^ "_mem") "fm"
             B.[ v frz; v start_b ] [ at_start ]);
        let cnt_start = declare (p ^ "_count_s") Types.Tint in
        emit
          (B.inst ~label:(p ^ "_cmem") "fm"
             B.[ v cnt; v start_b ] [ cnt_start ]);
        Hashtbl.replace frozen_at_start p at_start;
        Hashtbl.replace count_at_start p cnt_start
      | Syn.Data_port ->
        let frz = declare (p ^ "_frozen") Types.Tint in
        emit
          (B.inst ~label:(p ^ "_port") "freeze"
             B.[ v p; v (p ^ "_time") ] [ frz ]);
        let at_start = declare (p ^ "_value") Types.Tint in
        emit
          (B.inst ~label:(p ^ "_mem") "fm"
             B.[ v frz; v start_b ] [ at_start ]);
        Hashtbl.replace frozen_at_start p at_start;
        (* a data port always has exactly its current value *)
        let one = declare (p ^ "_count_s") Types.Tint in
        emit B.(one := when_ (i 1) (v start_b));
        Hashtbl.replace count_at_start p one)
    ins;
  (* mode automaton (modes extension): an integer state signal on the
     Dispatch clock, switched by trigger-port arrivals — the SIGNAL
     automaton encoding the paper's Sec. VII perspective describes.
     Transition guards are PARTIAL definitions: overlapping transitions
     from one mode are caught by the determinism analysis, and the
     [pre_mode = k] equality literals let the clock calculus prove
     transitions from distinct modes exclusive. *)
  let modes = inst.Inst.i_modes in
  let has_modes = modes <> [] in
  let mode_idx ?loc name =
    let rec go k = function
      | [] ->
        fail ?loc ~code:code_mode "thread %s: unknown mode %s"
          inst.Inst.i_path name
      | m :: rest ->
        if String.equal m.Syn.m_name name then k else go (k + 1) rest
    in
    go 0 modes
  in
  let mode_at_start = declare "mode_at_start" Types.Tint in
  if has_modes then begin
    let init_idx =
      match List.find_opt (fun m -> m.Syn.m_initial) modes with
      | Some m -> mode_idx m.Syn.m_name
      | None -> 0
    in
    let pre_mode = declare "pre_mode" Types.Tint in
    emit B.(pre_mode := delay ~init:(Types.Vint init_idx) (v "Mode"));
    emit B.(clk (v "Mode") ^= clk (v "Dispatch"));
    let guards =
      List.map
        (fun tr ->
          let trigger_ok =
            List.exists
              (fun (p, kind, _) ->
                String.equal p tr.Syn.mt_trigger
                && (kind = Syn.Event_port || kind = Syn.Event_data_port))
              ins
          in
          if not trigger_ok then
            fail ~loc:tr.Syn.mt_loc ~code:code_mode
              "thread %s: mode transition %s: trigger %s is not an in \
               event port"
              inst.Inst.i_path tr.Syn.mt_name tr.Syn.mt_trigger;
          let g = declare ("guard_" ^ tr.Syn.mt_name) Types.Tbool in
          emit
            B.(g
               := (v pre_mode = i (mode_idx ~loc:tr.Syn.mt_loc tr.Syn.mt_src))
                  && (v (tr.Syn.mt_trigger ^ "_count") > i 0));
          (g, mode_idx ~loc:tr.Syn.mt_loc tr.Syn.mt_dst))
        inst.Inst.i_transitions
    in
    List.iter
      (fun (g, dst) -> emit B.("Mode" =:: when_ (i dst) (v g)))
      guards;
    let no_guard =
      List.fold_left
        (fun acc (g, _) -> B.(acc && not_ (v g)))
        (B.b true) guards
    in
    emit B.("Mode" =:: when_ (v pre_mode) no_guard)
  end;
  (* the mode as seen by the behaviour, memorized at Start *)
  if has_modes then
    emit (B.inst ~label:"mode_mem" "fm" B.[ v "Mode"; v start_b ]
            [ mode_at_start ])
  else emit B.(mode_at_start := when_ (i 0) (v start_b));
  (* read accesses: memorize popped value at Start *)
  let read_at_start = Hashtbl.create 4 in
  List.iter
    (fun a ->
      let at_start = declare (a ^ "_value") Types.Tint in
      emit
        (B.inst ~label:(a ^ "_mem") "fm"
           B.[ v (a ^ "_r"); v start_b ] [ at_start ]);
      Hashtbl.replace read_at_start a at_start)
    reads;
  (* behaviour *)
  let ctx =
    { Behavior.start_event = B.v "Start";
      start_bool = B.v start_b;
      frozen =
        (fun p ->
          match Hashtbl.find_opt frozen_at_start p with
          | Some s -> B.v s
          | None ->
            fail ~loc:inst.Inst.i_loc ~code:code_iface
              "thread %s: behaviour reads unknown in port %s"
              inst.Inst.i_path p);
      frozen_count =
        (fun p ->
          match Hashtbl.find_opt count_at_start p with
          | Some s -> B.v s
          | None ->
            fail ~loc:inst.Inst.i_loc ~code:code_iface
              "thread %s: behaviour reads unknown in port %s"
              inst.Inst.i_path p);
      out_item = (fun p -> p ^ "_item");
      read_value =
        (fun a ->
          match Hashtbl.find_opt read_at_start a with
          | Some s -> B.v s
          | None ->
            fail ~loc:inst.Inst.i_loc ~code:code_iface
              "thread %s: behaviour reads unknown read access %s"
              inst.Inst.i_path a);
      pop_signal = (fun a -> a ^ "_pop");
      write_signal = (fun a -> a ^ "_w");
      fresh_local;
      in_mode =
        (fun m ->
          if has_modes then B.(v mode_at_start = i (mode_idx m))
          else B.b true);
      modes = List.map (fun m -> m.Syn.m_name) modes;
      props = inst.Inst.i_props;
      in_ports = List.map (fun (p, _, _) -> p) ins;
      out_ports = List.map (fun (p, _, _) -> p) outs;
      read_accesses = reads;
      write_accesses = writes }
  in
  let behavior =
    let base = Syn.impl_base_name inst.Inst.i_classifier in
    match Behavior.find registry base with
    | Some b -> b
    | None -> (
      match Behavior.find registry inst.Inst.i_name with
      | Some b -> b
      | None -> Behavior.default)
  in
  List.iter (fun (p, _, _) -> ignore (declare (p ^ "_item") Types.Tint)) outs;
  List.iter emit (behavior ctx);
  (* out ports *)
  List.iter
    (fun (p, kind, qsize) ->
      match kind with
      | Syn.Event_port | Syn.Event_data_port ->
        emit
          (B.inst
             ~params:[ Types.Vint qsize; Types.Vstring (overflow_of inst p) ]
             ~label:(p ^ "_port") "out_event_port"
             B.[ v (p ^ "_item"); v (p ^ "_time") ]
             [ p ])
      | Syn.Data_port ->
        emit
          (B.inst ~label:(p ^ "_port") "send"
             B.[ v (p ^ "_item"); v (p ^ "_time") ]
             [ p ]))
    outs;
  (* ctl2: instantaneous logical completion at Start *)
  emit B.("Complete" := clk (v "Start"));
  (* alarm: at a Deadline instant, fewer jobs have completed than have
     come due (a same-instant Complete counts as on time) *)
  let ndl = declare "due" Types.Tint in
  let nc = declare "completed" Types.Tint in
  emit B.(ndl := delay (v ndl) + i 1);
  emit B.(clk (v ndl) ^= clk (v "Deadline"));
  emit B.(nc := delay (v nc) + i 1);
  emit B.(clk (v nc) ^= clk (v "Complete"));
  let nc_at = declare "completed_at_dl" Types.Tint in
  emit (B.inst ~label:"nc_mem" "fm" B.[ v nc; v deadline_b ] [ nc_at ]);
  emit B.("Alarm" := on (v nc_at < v ndl));
  (* a port's value signal carries the source position of the AADL
     feature that produced it, so a type error on the signal can point
     back at the declaration *)
  let port_var p typ =
    match
      List.find_opt
        (fun f -> String.equal (Syn.feature_name f) p)
        inst.Inst.i_features
    with
    | Some f ->
      let l = Syn.feature_loc f in
      if l.Syn.l_line > 0 then
        Ast.var_at
          ~span:(Putil.Diag.span ~line:l.Syn.l_line ~col:l.Syn.l_col ())
          p typ
      else Ast.var p typ
    | None -> Ast.var p typ
  in
  let inputs =
    [ Ast.var "Dispatch" Types.Tevent;
      Ast.var "Start" Types.Tevent;
      Ast.var "Deadline" Types.Tevent ]
    @ List.concat_map
        (fun (p, _, _) ->
          [ port_var p Types.Tint; Ast.var (p ^ "_time") Types.Tevent ])
        ins
    @ List.map (fun (p, _, _) -> Ast.var (p ^ "_time") Types.Tevent) outs
    @ List.map (fun a -> Ast.var (a ^ "_r") Types.Tint) reads
  in
  let outputs =
    [ Ast.var "Complete" Types.Tevent; Ast.var "Alarm" Types.Tevent ]
    @ (if has_modes then [ Ast.var "Mode" Types.Tint ] else [])
    @ List.map (fun (p, _, _) -> port_var p Types.Tint) outs
    @ List.map (fun a -> Ast.var (a ^ "_pop") Types.Tevent) reads
    @ List.map (fun a -> Ast.var (a ^ "_w") Types.Tint) writes
  in
  { Ast.proc_name = process_name inst;
    params = [];
    inputs;
    outputs;
    locals = List.rev !locals;
    body = List.rev !stmts;
    subprocesses = [];
    pragmas =
      [ ("aadl", inst.Inst.i_path);
        ("aadl_classifier", inst.Inst.i_classifier) ] }

(* ------------------------------------------------------------------ *)
(* Per-process memoization                                             *)
(* ------------------------------------------------------------------ *)

(* [translate] is a pure function of the thread instance subtree and
   the behaviour registry (closures — keyed by the registry's stable
   id, see {!Behavior.make}), so its result is memoized per process:
   re-translating a system after editing one thread reruns exactly
   that thread's translation. Only successes are cached ([Trans_diag]
   defects are cheap to rediscover and must not be masked). The table
   is mutex-protected for Domain_pool safety. *)
let m_proc_ran = Putil.Metrics.counter "incr.translate.proc_ran"
let m_proc_skipped = Putil.Metrics.counter "incr.translate.proc_skipped"

let memo : (string, Ast.process) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()
let memo_cap = 512

let translate ~registry inst =
  Putil.Tracing.with_span "trans.thread"
    ~args:[ ("thread", Putil.Tracing.Astr inst.Inst.i_path) ]
  @@ fun () ->
  let key =
    Digest.string
      (Behavior.id registry ^ "\x00"
      ^ Marshal.to_string inst [ Marshal.No_sharing ])
  in
  match
    Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)
  with
  | Some p ->
    Putil.Metrics.incr m_proc_skipped;
    p
  | None ->
    Putil.Metrics.incr m_proc_ran;
    let p = translate_uncached ~registry inst in
    Mutex.protect memo_lock (fun () ->
        if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
        Hashtbl.replace memo key p);
    p
