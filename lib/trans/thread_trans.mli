(** Translation of an AADL thread instance to a SIGNAL process
    (the paper's Fig. 4 pattern).

    The generated process has:
    - control inputs [Dispatch], [Start], [Deadline] (the ctl1 bundle,
      produced by the synthesized scheduler);
    - per in port [p]: a value input [p] and the [p_time] Frozen_time
      event (the time1 bundle); the port body is an [in_event_port]
      (event/event-data ports, Fig. 5) or a [freeze] (data ports);
    - per out port [p]: a [p_time] Output_time event input and the sent
      value output [p], via [out_event_port] / [send];
    - per data access [a]: [a_r]/[a_pop] (read) or [a_w] (write)
      wired to the enclosing process's shared-data FIFO (Fig. 6);
    - outputs [Complete] (the ctl2 bundle) and [Alarm], raised at a
      Deadline occurrence when some dispatched job has not completed. *)

exception Trans_diag of Putil.Diag.t
(** Raised on a defect in the translated model: a mode automaton that
    cannot be translated ([TRANS-001]) or a behaviour referencing a
    port/access the thread does not declare ([TRANS-002]). Caller bugs
    (passing a non-thread instance) keep raising [Invalid_argument]. *)

val port_queue_size : Aadl.Syntax.feature -> int
(** The port's Queue_Size property, default 1 (AADL default). *)

val translate :
  registry:Behavior.registry ->
  Aadl.Instance.instance ->
  Signal_lang.Ast.process
(** @raise Invalid_argument if the instance is not a thread.
    @raise Trans_diag on a model-level defect (see above). *)

val process_name : Aadl.Instance.instance -> string
(** Deterministic SIGNAL process-model name for a thread instance
    (sanitized instance path, traceability preserved in a pragma). *)

(** {1 Interface-shape helpers}

    The assembly stage ({!System_trans}) must instantiate thread models
    with positionally matching arguments; these expose the exact
    ordering used when generating the interface. *)

val in_ports :
  Aadl.Instance.instance -> (string * Aadl.Syntax.port_kind * int) list
(** In and in-out ports with their kind and queue size, declaration
    order. *)

val out_ports :
  Aadl.Instance.instance -> (string * Aadl.Syntax.port_kind * int) list

val read_accesses : Aadl.Instance.instance -> string list
val write_accesses : Aadl.Instance.instance -> string list
