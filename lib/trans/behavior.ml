module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types

type ctx = {
  start_event : Ast.expr;
  start_bool : Ast.expr;
  frozen : string -> Ast.expr;
  frozen_count : string -> Ast.expr;
  out_item : string -> string;
  read_value : string -> Ast.expr;
  pop_signal : string -> string;
  write_signal : string -> string;
  fresh_local : Types.styp -> string;
  in_mode : string -> Ast.expr;
  modes : string list;
  props : Aadl.Syntax.property_assoc list;
  in_ports : string list;
  out_ports : string list;
  read_accesses : string list;
  write_accesses : string list;
}

type t = ctx -> Ast.stmt list

type registry = { reg_id : string; reg_entries : (string * t) list }

let make ~id entries = { reg_id = id; reg_entries = entries }
let empty = make ~id:"empty" []
let id reg = reg.reg_id

let find reg name =
  let low = String.lowercase_ascii name in
  List.find_map
    (fun (k, b) ->
      if String.equal (String.lowercase_ascii k) low then Some b else None)
    reg.reg_entries

let job_counter ctx =
  let n = ctx.fresh_local Types.Tint in
  let stmts =
    B.[ n := delay (v n) + i 1;
        clk (v n) ^= clk ctx.start_event ]
  in
  (stmts, B.v n)

let default ctx =
  let cnt_stmts, cnt = job_counter ctx in
  let item_value =
    match ctx.in_ports with
    | p :: _ -> ctx.frozen p
    | [] -> cnt
  in
  let outs =
    List.map (fun p -> B.(ctx.out_item p := item_value)) ctx.out_ports
  in
  let writes =
    List.map (fun a -> B.(ctx.write_signal a := cnt)) ctx.write_accesses
  in
  let pops =
    List.map
      (fun a -> B.(ctx.pop_signal a := clk ctx.start_event))
      ctx.read_accesses
  in
  cnt_stmts @ outs @ writes @ pops
