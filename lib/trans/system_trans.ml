module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module Syn = Aadl.Syntax
module Inst = Aadl.Instance
module S = Sched.Static_sched

type mode = Embedded | External

type ctl_spec = {
  cs_cpu : string;
  cs_ticks : int list;
  cs_horizon : int;
}

type output = {
  program : Ast.program;
  top : Ast.process;
  schedules : (string * S.schedule) list;
  tasks : (string * Sched.Task.t list) list;
  trace : Traceability.t;
  tick_inputs : string list;
  env_inputs : string list;
  env_outputs : string list;
  ctl_inputs : (string * ctl_spec) list;
}

(* Stable translation error codes (TRANS-001/002 live in
   {!Thread_trans}). *)
let code_sched_props =
  Putil.Diag.code "TRANS-003"
    "thread lacks the properties needed for static scheduling"
let code_fatal =
  Putil.Diag.code "TRANS-004" "translation cannot produce a program"
let code_horizon =
  Putil.Diag.code "TRANS-005"
    "schedule table too large for static expansion"

(* Ceiling on hyper-period/base-tick slots a schedule table may expand
   to. The embedded scheduler encoding is O(slots) SIGNAL equations
   (worse when start/complete events are irregular), and the clock
   calculus is superlinear in the equation count, so an unbounded
   expansion turns a wildly-mismatched period set (say 4 ms against
   6 s) into a multi-gigabyte analysis. Past this ceiling the
   processor is scheduled like an infeasible one — never-present
   stubs plus a diagnostic. The paper-scale case study uses 24. *)
let max_table_slots = 256

(* A defect after which no output program can be assembled; recoverable
   defects accumulate in the collector instead. *)
exception Fatal of Putil.Diag.t

let span_of_loc ?file (l : Syn.loc) =
  if l.Syn.l_line > 0 then
    Some (Putil.Diag.span ?file ~line:l.Syn.l_line ~col:l.Syn.l_col ())
  else None

module Metrics = Putil.Metrics

let m_translations = Metrics.counter "trans.translations"
let m_processes = Metrics.counter "trans.processes"
let m_equations = Metrics.counter "trans.equations"
let m_fifos = Metrics.counter "trans.fifos"
let m_translate_ns = Metrics.timer "trans.translate_ns"

let record_output_metrics (program : Ast.program) =
  let is_fifo st =
    match Ast.desc st with
    | Ast.Sinstance i ->
      (match Signal_lang.Stdproc.primitive_of_name i.Ast.inst_proc with
       | Some _ -> true
       | None -> false)
    | _ -> false
  in
  let rec count_proc (p : Ast.process) =
    Metrics.incr m_processes;
    Metrics.incr ~by:(List.length p.Ast.body) m_equations;
    Metrics.incr
      ~by:(List.length (List.filter is_fifo p.Ast.body))
      m_fifos;
    List.iter count_proc p.Ast.subprocesses
  in
  List.iter count_proc program.Ast.processes

let sanitize path = String.map (fun c -> if c = '.' then '_' else c) path

(* local name of an instance: path without the root component *)
let local_name root_path path =
  let prefix = root_path ^ "." in
  let p =
    if String.length path > String.length prefix
       && String.sub path 0 (String.length prefix) = prefix
    then String.sub path (String.length prefix)
           (String.length path - String.length prefix)
    else path
  in
  sanitize p

let task_of_thread_diag ?file inst =
  let props = inst.Inst.i_props in
  let span = span_of_loc ?file inst.Inst.i_loc in
  let err fmt =
    Format.kasprintf
      (fun m -> Error (Putil.Diag.errorf ?span ~code:code_sched_props "%s" m))
      fmt
  in
  (* Periodic threads schedule directly; a Sporadic thread reserves a
     periodic server slot at its minimum interarrival rate (its Period
     property), the standard static treatment — the paper's scheduler
     is static and non-preemptive by requirement. Aperiodic and
     Background dispatching have no static slot and are rejected. *)
  match Aadl.Props.dispatch_protocol props with
  | Some (Aadl.Props.Aperiodic | Aadl.Props.Background) ->
    err
      "thread %s: aperiodic/background dispatch cannot be scheduled \
       statically"
      inst.Inst.i_path
  | Some Aadl.Props.Periodic | Some Aadl.Props.Sporadic | None -> (
  match Aadl.Props.period_us props with
  | None -> err "thread %s: no Period property" inst.Inst.i_path
  | Some period_us ->
    let deadline_us =
      Option.value ~default:period_us (Aadl.Props.deadline_us props)
    in
    let wcet_us =
      match Aadl.Props.compute_execution_time_us props with
      | Some w when w > 0 -> w
      | Some _ | None -> max 1 (period_us / 10)
    in
    let offset_us =
      match Aadl.Props.find "Dispatch_Offset" props with
      | Some v -> Option.value ~default:0 (Aadl.Props.duration_us v)
      | None -> 0
    in
    (* route user-model parameters through the checked constructor so
       an inconsistent property set becomes a located SCHED-TASK-001
       rather than an Invalid_argument trap *)
    (match
       Sched.Task.make_checked ~deadline_us ~offset_us
         ?priority:(Aadl.Props.priority props)
         ~name:inst.Inst.i_path ~period_us ~wcet_us ()
     with
     | Ok task -> Ok task
     | Error d ->
       Error
         (match d.Putil.Diag.span with
          | Some _ -> d
          | None -> { d with Putil.Diag.span = span })))

let task_of_thread inst =
  Result.map_error
    (fun d -> d.Putil.Diag.message)
    (task_of_thread_diag inst)

(* never-present expressions, used for unconnected inputs *)
let never_int = B.(when_ (i 0) (b false))
let never_event = B.(on (b false))

let is_thread_path t path =
  match Inst.find t path with
  | Some i -> i.Inst.i_category = Syn.Thread
  | None -> false

let ctl_suffixes =
  [ (S.Dispatch, "_dispatch"); (S.Start, "_start");
    (S.Complete, "_complete"); (S.Deadline, "_deadline") ]

let translate_core ?file ~registry ~policy ~mode ~diags t =
    let trace = Traceability.create () in
    let root_path = t.Inst.root.Inst.i_path in
    let lname inst = local_name root_path inst.Inst.i_path in
    let threads = Inst.threads t in
    if threads = [] then
      raise
        (Fatal (Putil.Diag.errorf ~code:code_fatal "model contains no thread"));
    let datas = Inst.instances_of_category t Syn.Data in
    let processors =
      Inst.instances_of_category t Syn.Processor
      @ Inst.instances_of_category t Syn.Virtual_processor
    in
    (* ---- binding: thread -> processor ---- *)
    let explicit_cpu th =
      let path = th.Inst.i_path in
      List.find_map
        (fun (part, cpu) ->
          if String.equal part path
             || (String.length path > String.length part
                 && String.sub path 0 (String.length part + 1) = part ^ ".")
          then Some cpu
          else None)
        t.Inst.bindings
    in
    (* Memoized per thread: a failed extraction is reported once and
       replaced by a harmless placeholder slot, so one defective thread
       does not mask defects elsewhere in the model. *)
    let task_cache = Hashtbl.create 8 in
    (* placeholder period when a defective thread declares none: the
       gcd of the declared periods, which perturbs neither the
       processor's base tick (a gcd) nor its hyper-period (an lcm) —
       any other choice can inflate the schedule table by orders of
       magnitude *)
    let fallback_period_us =
      match
        List.filter_map
          (fun th ->
            match Aadl.Props.period_us th.Inst.i_props with
            | Some p when p > 0 -> Some p
            | Some _ | None -> None)
          threads
      with
      | [] -> 1_000_000
      | ps -> Putil.Mathx.gcd_list ps
    in
    let task_of th =
      match Hashtbl.find_opt task_cache th.Inst.i_path with
      | Some task -> task
      | None ->
        let task =
          match task_of_thread_diag ?file th with
          | Ok task -> task
          | Error d ->
            Putil.Diag.add diags d;
            (* keep the thread's declared period if it has one: an
               arbitrary fallback period would enter the processor's
               hyper-period lcm and can inflate the schedule table by
               orders of magnitude *)
            let period_us =
              match Aadl.Props.period_us th.Inst.i_props with
              | Some p when p > 0 -> p
              | Some _ | None -> fallback_period_us
            in
            Sched.Task.make ~name:th.Inst.i_path ~period_us ~wcet_us:1 ()
        in
        Hashtbl.add task_cache th.Inst.i_path task;
        task
    in
    let cpu_map =
      let unbound =
        List.filter (fun th -> explicit_cpu th = None) threads
      in
      match processors, unbound with
      | [], _ ->
        (* no declared processor: everything on an implicit one *)
        List.map (fun th -> (th.Inst.i_path, "__implicit_cpu__")) threads
      | [ only ], _ ->
        List.map
          (fun th ->
            ( th.Inst.i_path,
              Option.value ~default:only.Inst.i_path (explicit_cpu th) ))
          threads
      | _ :: _ :: _, [] ->
        List.map
          (fun th -> (th.Inst.i_path, Option.get (explicit_cpu th)))
          threads
      | _ :: _ :: _, _ :: _ -> (
        (* partitioned allocation of the unbound threads around the
           explicit bindings (the paper's SynDEx connection, ref [17]) *)
        let cpus = List.map (fun p -> p.Inst.i_path) processors in
        let preloaded =
          List.map
            (fun cpu ->
              ( cpu,
                List.filter_map
                  (fun th ->
                    if explicit_cpu th = Some cpu then Some (task_of th)
                    else None)
                  threads ))
            cpus
        in
        let todo = List.map task_of unbound in
        match Sched.Alloc.allocate ~policy ~preloaded ~cpus todo with
        | Error f -> raise (Fatal (Sched.Alloc.diag_of_failure f))
        | Ok assignments ->
          List.map
            (fun th ->
              match explicit_cpu th with
              | Some cpu -> (th.Inst.i_path, cpu)
              | None ->
                let cpu =
                  List.find_map
                    (fun a ->
                      if
                        List.exists
                          (fun task ->
                            task.Sched.Task.t_name = th.Inst.i_path)
                          a.Sched.Alloc.a_tasks
                      then Some a.Sched.Alloc.a_cpu
                      else None)
                    assignments
                in
                (th.Inst.i_path, Option.get cpu))
            threads)
    in
    let cpu_of_thread th = List.assoc th.Inst.i_path cpu_map in
    let cpu_paths =
      List.sort_uniq String.compare (List.map snd cpu_map)
    in
    (* ---- task sets and schedules per processor ---- *)
    let tasks_of_cpu =
      List.map
        (fun cpu ->
          let ths =
            List.filter (fun th -> String.equal (cpu_of_thread th) cpu) threads
          in
          (cpu, List.map task_of ths))
        cpu_paths
    in
    (* A processor whose task set is infeasible is reported and its
       scheduler replaced by never-present stubs, so defects on other
       processors (and type/clock defects downstream) still surface in
       the same run. *)
    let schedules, stub_cpus =
      let ok, failed =
        List.fold_left
          (fun (ok, failed) (cpu, tasks) ->
            match S.synthesize ~policy tasks with
            | Ok s when s.S.hyperperiod_us / s.S.base_us > max_table_slots ->
              let span =
                List.find_map
                  (fun th ->
                    if String.equal (cpu_of_thread th) cpu
                    then span_of_loc ?file th.Inst.i_loc
                    else None)
                  threads
              in
              Putil.Diag.add diags
                (Putil.Diag.errorf ?span ~code:code_horizon
                   "processor %s: schedule table of %d slots (hyper-period \
                    %d us over a %d us base tick) exceeds the %d-slot \
                    static-expansion limit; check for wildly mismatched \
                    thread periods"
                   cpu
                   (s.S.hyperperiod_us / s.S.base_us)
                   s.S.hyperperiod_us s.S.base_us max_table_slots);
              (ok, (cpu, tasks) :: failed)
            | Ok s -> ((cpu, s) :: ok, failed)
            | Error f ->
              (* point at the thread whose job misses, falling back to
                 any thread bound to this processor *)
              let span =
                let bound p =
                  List.find_map
                    (fun th ->
                      if p th && String.equal (cpu_of_thread th) cpu
                      then span_of_loc ?file th.Inst.i_loc
                      else None)
                    threads
                in
                match
                  bound (fun th ->
                      String.equal th.Inst.i_path f.S.f_task)
                with
                | Some s -> Some s
                | None -> bound (fun _ -> true)
              in
              let related =
                [ { Putil.Diag.rel_message =
                      Printf.sprintf "while synthesizing the %s schedule \
                                      of processor %s"
                        (S.policy_to_string policy) cpu;
                    rel_span = None } ]
              in
              Putil.Diag.add diags (S.diag_of_failure ?span ~related f);
              (ok, (cpu, tasks) :: failed))
          ([], []) tasks_of_cpu
      in
      (List.rev ok, List.rev failed)
    in
    (* ---- thread process models ---- *)
    let thread_models =
      List.map
        (fun th ->
          let model = Thread_trans.translate ~registry th in
          Traceability.add_component trace
            ~aadl:(Putil.Uid.Thread.intern th.Inst.i_path)
            ~signal:(Putil.Uid.Signal.intern model.Ast.proc_name);
          (th, model))
        threads
    in
    (* ---- scheduler models ---- *)
    let sched_name cpu = "sched_" ^ sanitize (local_name root_path cpu) in
    let prefix_of_task task_name =
      match Inst.find t task_name with
      | Some th -> lname th
      | None -> sanitize task_name
    in
    let sched_models =
      match mode with
      | External -> []
      | Embedded ->
        List.map
          (fun (cpu, s) ->
            let name = sched_name cpu in
            Traceability.add trace ~aadl:cpu ~signal:name;
            (cpu, Sched_trans.translate ~name ~prefix_of:prefix_of_task s))
          schedules
    in
    (* In the scheduler-exogenous mode, every task's ctl events become
       top-level inputs driven from the schedule tables at simulation
       time (the generated kernel is then invariant under timing-only
       model edits). [cs_ticks]/[cs_horizon] are in schedule base
       ticks; tasks on a processor with no feasible schedule get an
       empty tick list — never driven, mirroring the Embedded stubs. *)
    let ctl_specs =
      match mode with
      | Embedded -> []
      | External ->
        let of_task spec_of tname =
          let prefix = prefix_of_task tname in
          List.map
            (fun (ev, suffix) -> (prefix ^ suffix, spec_of ev))
            ctl_suffixes
        in
        List.concat_map
          (fun (cpu, s) ->
            let horizon = s.S.hyperperiod_us / s.S.base_us in
            let tnames =
              List.sort_uniq String.compare
                (List.map (fun j -> j.S.j_task.Sched.Task.t_name) s.S.jobs)
            in
            List.concat_map
              (fun tname ->
                of_task
                  (fun ev ->
                    { cs_cpu = cpu;
                      cs_ticks =
                        List.sort_uniq compare
                          (List.map
                             (fun t -> t / s.S.base_us)
                             (S.event_times s tname ev));
                      cs_horizon = horizon })
                  tname)
              tnames)
          schedules
        @ List.concat_map
            (fun (cpu, tasks) ->
              List.concat_map
                (fun task ->
                  of_task
                    (fun _ ->
                      { cs_cpu = cpu; cs_ticks = []; cs_horizon = 1 })
                    task.Sched.Task.t_name)
                tasks)
            stub_cpus
    in
    let ctl_set = Hashtbl.create 16 in
    List.iter (fun (n, _) -> Hashtbl.replace ctl_set n ()) ctl_specs;
    (* ---- top process assembly ---- *)
    let locals = ref [] in
    let stmts = ref [] in
    (* ctl events that are top-level inputs must not shadow themselves
       as locals when thread wiring mentions them *)
    let declare name typ =
      if (not (Hashtbl.mem ctl_set name))
         && not (List.exists (fun vd -> vd.Ast.var_name = name) !locals)
      then locals := Ast.var name typ :: !locals;
      name
    in
    let emit s = stmts := s :: !stmts in
    let semantic = Inst.semantic_connections t in
    (* environment endpoints: features of non-thread components *)
    let env_inputs = ref [] and env_outputs = ref [] in
    let env_input_name path =
      let n = local_name root_path path in
      if not (List.mem n !env_inputs) then env_inputs := n :: !env_inputs;
      Traceability.add_port trace ~aadl:(Putil.Uid.Port.intern path)
        ~signal:(Putil.Uid.Signal.intern n);
      n
    in
    let split_feature path =
      match String.rindex_opt path '.' with
      | None -> None
      | Some i ->
        Some
          ( String.sub path 0 i,
            String.sub path (i + 1) (String.length path - i - 1) )
    in
    let source_expr src =
      match Inst.feature_of_path t src with
      | Some (inst, _) when inst.Inst.i_category = Syn.Thread -> (
        match split_feature src with
        | Some (_, f) -> B.v (lname inst ^ "_" ^ f)
        | None -> assert false)
      | _ -> B.v (env_input_name src)
    in
    let merge_exprs = function
      | [] -> never_int
      | e :: rest -> List.fold_left (fun acc e' -> B.default acc e') e rest
    in
    (* ---- shared data FIFOs ---- *)
    let data_capacity inst =
      match Aadl.Props.queue_size inst.Inst.i_props with
      | Some n when n > 0 -> n
      | Some _ | None -> 16
    in
    (* map: data path -> signal prefix *)
    let data_prefix = Hashtbl.create 4 in
    List.iter
      (fun d ->
        let dp = lname d in
        Hashtbl.replace data_prefix d.Inst.i_path dp;
        Traceability.add_component trace
          ~aadl:(Putil.Uid.Thread.intern d.Inst.i_path)
          ~signal:(Putil.Uid.Signal.intern dp))
      datas;
    (* access connections, resolved to (data path, thread path, access) *)
    let access_links =
      List.filter_map
        (fun c ->
          if c.Inst.ci_kind <> Syn.Access_connection then None
          else
            let resolve a b =
              match Inst.find t a with
              | Some d when d.Inst.i_category = Syn.Data -> (
                match split_feature b with
                | Some (thp, acc) when is_thread_path t thp ->
                  Some (d.Inst.i_path, thp, acc)
                | _ -> None)
              | _ -> None
            in
            match resolve c.Inst.ci_src c.Inst.ci_dst with
            | Some l -> Some l
            | None -> resolve c.Inst.ci_dst c.Inst.ci_src)
        t.Inst.connections
    in
    let data_of_access thp acc =
      List.find_map
        (fun (d, th, a) ->
          if String.equal th thp && String.equal a acc then Some d else None)
        access_links
    in
    (* ---- scheduler instances ---- *)
    let tick_inputs = ref [] in
    let multi_cpu = List.length cpu_paths > 1 in
    List.iter
      (fun (cpu, model) ->
        let tick =
          if multi_cpu then "tick_" ^ sanitize (local_name root_path cpu)
          else "tick"
        in
        if not (List.mem tick !tick_inputs) then
          tick_inputs := tick :: !tick_inputs;
        let outs =
          List.map (fun vd -> declare vd.Ast.var_name Types.Tevent)
            model.Ast.outputs
        in
        emit
          (B.inst ~label:(model.Ast.proc_name ^ "_i") model.Ast.proc_name
             [ B.v tick ] outs))
      sched_models;
    (* ctl stubs for processors whose schedule failed: the bound
       threads' dispatch/start/complete/deadline events stay declared
       and defined (never present), keeping the program elaborable.
       (In External mode they are inputs with no firing ticks.) *)
    if mode = Embedded then
      List.iter
        (fun (_cpu, tasks) ->
          List.iter
            (fun task ->
              let p = prefix_of_task task.Sched.Task.t_name in
              List.iter
                (fun suffix ->
                  let n = declare (p ^ suffix) Types.Tevent in
                  emit B.(n := never_event))
                [ "_dispatch"; "_start"; "_complete"; "_deadline" ])
            tasks)
        stub_cpus;
    (* ---- data fifo instances ---- *)
    List.iter
      (fun d ->
        let dp = Hashtbl.find data_prefix d.Inst.i_path in
        let push = declare (dp ^ "_push") Types.Tint in
        let pop = declare (dp ^ "_pop") Types.Tevent in
        let data_sig = declare (dp ^ "_data") Types.Tint in
        let size_sig = declare (dp ^ "_size") Types.Tint in
        let writers =
          List.filter (fun (dpath, _, _) -> dpath = d.Inst.i_path) access_links
          |> List.filter_map (fun (_, thp, acc) ->
                 match Inst.find t thp with
                 | Some th
                   when List.mem acc (Thread_trans.write_accesses th) ->
                   Some (lname th ^ "_" ^ acc ^ "_w")
                 | _ -> None)
        in
        let readers =
          List.filter (fun (dpath, _, _) -> dpath = d.Inst.i_path) access_links
          |> List.filter_map (fun (_, thp, acc) ->
                 match Inst.find t thp with
                 | Some th when List.mem acc (Thread_trans.read_accesses th) ->
                   Some (lname th ^ "_" ^ acc ^ "_pop")
                 | _ -> None)
        in
        (* writers contribute partial definitions (Fig. 6, eq4) *)
        (match writers with
         | [] -> emit B.(push := never_int)
         | ws -> List.iter (fun w -> emit B.(push =:: v w)) ws);
        (match readers with
         | [] -> emit B.(pop := never_event)
         | r0 :: rest ->
           emit
             B.(pop
                := List.fold_left
                     (fun acc x -> default acc (clk (v x)))
                     (clk (v r0)) rest));
        emit
          (B.inst
             ~params:[ Types.Vint (data_capacity d); Types.Vstring "dropoldest" ]
             ~label:(dp ^ "_fifo") "fifo_reset"
             B.[ v push; v pop; never_event ]
             [ data_sig; size_sig ]))
      datas;
    (* ---- thread instances ---- *)
    let alarms = ref [] in
    List.iter
      (fun (th, model) ->
        let tp = lname th in
        let ins = Thread_trans.in_ports th in
        let outs = Thread_trans.out_ports th in
        let reads = Thread_trans.read_accesses th in
        let writes = Thread_trans.write_accesses th in
        (* declare ctl and data locals produced elsewhere *)
        let dispatch = tp ^ "_dispatch" and start = tp ^ "_start" in
        let complete = tp ^ "_complete" and deadline = tp ^ "_deadline" in
        List.iter (fun n -> ignore (declare n Types.Tevent))
          [ dispatch; start; complete; deadline ];
        (* in-port arrival and frozen-time *)
        let in_args =
          List.concat_map
            (fun (p, _, _) ->
              let dstpath = th.Inst.i_path ^ "." ^ p in
              let sources =
                List.filter
                  (fun c ->
                    c.Inst.ci_kind = Syn.Port_connection
                    && String.equal c.Inst.ci_dst dstpath)
                  semantic
              in
              let arrival =
                merge_exprs (List.map (fun c -> source_expr c.Inst.ci_src) sources)
              in
              let ft_prop =
                let fprops =
                  match
                    List.find_opt
                      (fun f -> Syn.feature_name f = p)
                      th.Inst.i_features
                  with
                  | Some (Syn.Port { fprops; _ }) -> fprops
                  | _ -> []
                in
                match Aadl.Props.input_time fprops with
                | Some it -> Some it
                | None -> Aadl.Props.input_time th.Inst.i_props
              in
              let ft =
                match Option.value ~default:Aadl.Props.At_dispatch ft_prop with
                | Aadl.Props.At_dispatch -> dispatch
                | Aadl.Props.At_start -> start
                | Aadl.Props.At_complete -> complete
                | Aadl.Props.At_deadline -> deadline
              in
              Traceability.add_port trace
                ~aadl:(Putil.Uid.Port.intern dstpath)
                ~signal:(Putil.Uid.Signal.intern (tp ^ "_" ^ p));
              [ arrival; B.v ft ])
            ins
        in
        (* out-port output-time *)
        let out_time_args =
          List.map
            (fun (p, _, _) ->
              let srcpath = th.Inst.i_path ^ "." ^ p in
              let conns =
                List.filter
                  (fun c ->
                    c.Inst.ci_kind = Syn.Port_connection
                    && String.equal c.Inst.ci_src srcpath)
                  semantic
              in
              let ot_prop =
                let fprops =
                  match
                    List.find_opt
                      (fun f -> Syn.feature_name f = p)
                      th.Inst.i_features
                  with
                  | Some (Syn.Port { fprops; _ }) -> fprops
                  | _ -> []
                in
                match Aadl.Props.output_time fprops with
                | Some ot -> Some ot
                | None -> Aadl.Props.output_time th.Inst.i_props
              in
              let default_ot =
                if conns <> [] && List.for_all (fun c -> not c.Inst.ci_immediate) conns
                then Aadl.Props.At_deadline
                else Aadl.Props.At_complete
              in
              match Option.value ~default:default_ot ot_prop with
              | Aadl.Props.At_dispatch -> B.v dispatch
              | Aadl.Props.At_start -> B.v start
              | Aadl.Props.At_complete -> B.v complete
              | Aadl.Props.At_deadline -> B.v deadline)
            outs
        in
        (* read-access data values *)
        let read_args =
          List.map
            (fun a ->
              match data_of_access th.Inst.i_path a with
              | Some d -> B.v (Hashtbl.find data_prefix d ^ "_data")
              | None -> never_int)
            reads
        in
        let in_exprs =
          B.[ v dispatch; v start; v deadline ]
          @ in_args @ out_time_args @ read_args
        in
        let out_names =
          [ declare (tp ^ "_done") Types.Tevent;
            declare (tp ^ "_alarm") Types.Tevent ]
          @ (if th.Inst.i_modes <> [] then
               [ declare (tp ^ "_mode") Types.Tint ]
             else [])
          @ List.map (fun (p, _, _) -> declare (tp ^ "_" ^ p) Types.Tint) outs
          @ List.map
              (fun a -> declare (tp ^ "_" ^ a ^ "_pop") Types.Tevent)
              reads
          @ List.map (fun a -> declare (tp ^ "_" ^ a ^ "_w") Types.Tint) writes
        in
        alarms := (tp ^ "_alarm") :: !alarms;
        emit (B.inst ~label:tp model.Ast.proc_name in_exprs out_names))
      thread_models;
    (* ---- environment outputs ---- *)
    let env_out_stmts = ref [] in
    List.iter
      (fun c ->
        if c.Inst.ci_kind = Syn.Port_connection then begin
          let dst_is_env =
            match Inst.feature_of_path t c.Inst.ci_dst with
            | Some (inst, _) -> inst.Inst.i_category <> Syn.Thread
            | None -> false
          in
          let src_is_thread =
            match Inst.feature_of_path t c.Inst.ci_src with
            | Some (inst, _) -> inst.Inst.i_category = Syn.Thread
            | None -> false
          in
          if dst_is_env && src_is_thread then begin
            let out = local_name root_path c.Inst.ci_dst in
            Traceability.add_port trace
              ~aadl:(Putil.Uid.Port.intern c.Inst.ci_dst)
              ~signal:(Putil.Uid.Signal.intern out);
            if not (List.mem out !env_outputs) then begin
              env_outputs := out :: !env_outputs;
              env_out_stmts :=
                (out, [ source_expr c.Inst.ci_src ]) :: !env_out_stmts
            end
            else
              env_out_stmts :=
                List.map
                  (fun (o, es) ->
                    if String.equal o out then
                      (o, es @ [ source_expr c.Inst.ci_src ])
                    else (o, es))
                  !env_out_stmts
          end
        end)
      semantic;
    List.iter
      (fun (out, exprs) -> emit B.(out := merge_exprs exprs))
      (List.rev !env_out_stmts);
    (* ---- merged alarm ---- *)
    (match List.rev !alarms with
     | [] -> emit B.("Alarm" := never_event)
     | a :: rest ->
       emit
         B.("Alarm"
            := List.fold_left (fun acc x -> default acc (v x)) (v a) rest));
    let top =
      { Ast.proc_name = sanitize (Syn.impl_base_name root_path);
        params = [];
        inputs =
          List.map (fun tname -> Ast.var tname Types.Tevent)
            (List.rev !tick_inputs)
          @ List.map (fun (n, _) -> Ast.var n Types.Tevent) ctl_specs
          @ List.map (fun n -> Ast.var n Types.Tint) (List.rev !env_inputs);
        outputs =
          List.map (fun n -> Ast.var n Types.Tint) (List.rev !env_outputs)
          @ [ Ast.var "Alarm" Types.Tevent ];
        locals = List.rev !locals;
        body = List.rev !stmts;
        subprocesses = [];
        pragmas =
          ("aadl", root_path)
          :: (if mode = External then [ ("sched", "external") ] else []) }
    in
    let program =
      B.program
        (sanitize (Syn.impl_base_name root_path) ^ "_ssme")
        (List.map snd thread_models
         @ List.map snd sched_models
         @ [ top ])
    in
    record_output_metrics program;
    { program; top;
      schedules;
      tasks = tasks_of_cpu;
      trace;
      tick_inputs = List.rev !tick_inputs;
      env_inputs = List.rev !env_inputs;
      env_outputs = List.rev !env_outputs;
      ctl_inputs = ctl_specs }

let translate_diag ?file ?(registry = Behavior.empty) ?(policy = S.Edf)
    ?(mode = Embedded) t =
  Putil.Tracing.with_span "trans.system"
    ~args:[ ("root", Putil.Tracing.Astr t.Inst.root.Inst.i_path) ]
  @@ fun () ->
  Metrics.incr m_translations;
  Metrics.time m_translate_ns @@ fun () ->
  let diags = Putil.Diag.collector () in
  match translate_core ?file ~registry ~policy ~mode ~diags t with
  | out -> (Some out, Putil.Diag.result diags)
  | exception Fatal d ->
    Putil.Diag.add diags d;
    (None, Putil.Diag.result diags)
  | exception Thread_trans.Trans_diag d ->
    Putil.Diag.add diags d;
    (None, Putil.Diag.result diags)
  | exception Invalid_argument m ->
    Putil.Diag.add diags (Putil.Diag.errorf ~code:code_fatal "%s" m);
    (None, Putil.Diag.result diags)

let translate ?registry ?policy ?mode t =
  match translate_diag ?registry ?policy ?mode t with
  | Some out, diags when not (Putil.Diag.has_errors diags) -> Ok out
  | _, diags -> Error (Putil.Diag.list_to_string diags)
