module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types
module S = Sched.Static_sched

let output_names ~prefix =
  [ prefix ^ "_dispatch"; prefix ^ "_start"; prefix ^ "_complete";
    prefix ^ "_deadline" ]

let task_names s =
  List.sort_uniq String.compare
    (List.map (fun j -> j.S.j_task.Sched.Task.t_name) s.S.jobs)

let translate ~name ~prefix_of (s : S.schedule) =
  let horizon = s.S.hyperperiod_us / s.S.base_us in
  let locals = ref [] in
  let stmts = ref [] in
  let declare n typ =
    locals := Ast.var n typ :: !locals;
    n
  in
  let emit st = stmts := st :: !stmts in
  let n = declare "n" Types.Tint in
  let ph = declare "ph" Types.Tint in
  emit B.(n := delay (v n) + i 1);
  emit B.(clk (v n) ^= clk (v "tick"));
  emit B.(ph := (v n - i 1) mod i horizon);
  let outputs = ref [] in
  List.iter
    (fun tname ->
      let prefix = prefix_of tname in
      List.iter2
        (fun out ev ->
          outputs := Ast.var out Types.Tevent :: !outputs;
          let ticks =
            List.map (fun t -> t / s.S.base_us) (S.event_times s tname ev)
            |> List.sort_uniq compare
          in
          (* an event at absolute tick T fires at every phase T mod H;
             when T ≥ H (a deadline wrapping past the hyper-period) it
             must stay silent until the tick counter actually reaches
             T, hence the extra guard *)
          let cond_of t =
            let tm = t mod horizon in
            let phase_eq = B.(v ph = i tm) in
            if t >= horizon then B.(phase_eq && (v n > i t)) else phase_eq
          in
          (* a tick set that is an arithmetic progression covering the
             hyper-period — the common case: strictly periodic events —
             collapses to one modular test instead of an OR with one
             term per firing, keeping the generated program size
             independent of the hyper-period/period ratio *)
          let progression = function
            | t0 :: (_ :: _ as rest) when List.for_all (fun t -> t < horizon) ticks ->
              let d = List.hd rest - t0 in
              let rec ap prev = function
                | [] -> true
                | t :: ts -> t - prev = d && ap t ts
              in
              if d > 0 && ap t0 rest
                 && horizon mod d = 0
                 && List.length ticks = horizon / d
              then Some (t0, d)
              else None
            | _ -> None
          in
          match ticks with
          | [] ->
            (* never fires: the empty clock *)
            emit B.(out := on (b false))
          | t0 :: rest -> (
            match progression ticks with
            | Some (t0, d) -> emit B.(out := on (v ph mod i d = i t0))
            | None ->
              let cond =
                List.fold_left (fun acc t -> B.(acc || cond_of t)) (cond_of t0)
                  rest
              in
              emit B.(out := on cond)))
        (output_names ~prefix)
        [ S.Dispatch; S.Start; S.Complete; S.Deadline ])
    (task_names s);
  { Ast.proc_name = name;
    params = [];
    inputs = [ Ast.var "tick" Types.Tevent ];
    outputs = List.rev !outputs;
    locals = List.rev !locals;
    body = List.rev !stmts;
    subprocesses = [];
    pragmas =
      [ ("scheduler",
         Printf.sprintf "policy %s, hyperperiod %d us, base %d us"
           (S.policy_to_string s.S.s_policy)
           s.S.hyperperiod_us s.S.base_us) ] }
