(** Thread behaviour registry.

    AADL describes architecture, not computation: the body of a thread
    (what it does between Input_Time and Output_Time) comes from source
    code in real systems. The translator therefore consults a registry
    mapping thread classifiers to behaviour generators; unregistered
    threads get a neutral default (echo the first frozen input, or a
    job counter). This mirrors the paper's
    [ProducerConsumer_others_System_behavior()] processes. *)

type ctx = {
  start_event : Signal_lang.Ast.expr;
      (** the thread's [Start] control event *)
  start_bool : Signal_lang.Ast.expr;
      (** boolean [true] at start instants *)
  frozen : string -> Signal_lang.Ast.expr;
      (** in port name → frozen value, memorized at [Start]
          (an [fm] of the port's frozen FIFO head) *)
  frozen_count : string -> Signal_lang.Ast.expr;
      (** in port name → number of items frozen for this dispatch,
          memorized at [Start] *)
  out_item : string -> string;
      (** out port name → signal to define with the produced item *)
  read_value : string -> Signal_lang.Ast.expr;
      (** read data-access name → value popped from the shared data *)
  pop_signal : string -> string;
      (** read data-access name → pop-request event signal to define *)
  write_signal : string -> string;
      (** write data-access name → write signal to define *)
  fresh_local : Signal_lang.Types.styp -> string;
      (** declare a behaviour-local signal *)
  in_mode : string -> Signal_lang.Ast.expr;
      (** mode name → boolean, true at [Start] when the thread is in
          that mode (modes extension; constant true for modeless
          threads) *)
  modes : string list;
      (** declared mode names, declaration order; [] when modeless *)
  props : Aadl.Syntax.property_assoc list;
      (** the thread's merged properties *)
  in_ports : string list;
  out_ports : string list;
  read_accesses : string list;
  write_accesses : string list;
}

type t = ctx -> Signal_lang.Ast.stmt list

type registry
(** Behaviour entries keyed by thread classifier base name
    (case-insensitive), plus a stable string identity. Behaviours are
    closures, so a registry cannot be digested structurally; the id is
    what incremental recompute folds into its stage keys, and it MUST
    change whenever the generated behaviour changes (e.g. derive it
    from the configuration parameters the behaviours close over). *)

val make : id:string -> (string * t) list -> registry
(** [make ~id entries] — see {!registry} for the contract on [id]. *)

val empty : registry
(** No entries; id ["empty"]. *)

val id : registry -> string

val find : registry -> string -> t option

val default : t
(** Neutral behaviour: every out port and write access carries a job
    counter at [Start] (or the first frozen input when one exists);
    every read access pops at [Start]. *)

val job_counter :
  ctx -> Signal_lang.Ast.stmt list * Signal_lang.Ast.expr
(** Defining statements and the counter expression (number of starts so
    far), present at [Start]. *)
