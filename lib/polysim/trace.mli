(** Recorded simulation traces: per logical instant, each signal is
    absent or present with a value. *)

type t

val create : 'p Signal_lang.Ast.gvardecl list -> t
(** Empty trace over the given signal declarations (any phase; marks
    are stripped — traces record names, types and values only). *)

val declarations : t -> Signal_lang.Ast.bare Signal_lang.Ast.gvardecl list

val push :
  t -> (Signal_lang.Ast.ident * Signal_lang.Types.value) list -> unit
(** Append one instant: the association list gives the present signals
    with their values; every other declared signal is absent.
    Undeclared names are ignored. *)

val push_row : t -> (int * Signal_lang.Types.value) array -> unit
(** Int-indexed fast path used by the simulators: the row lists the
    present signals by declaration index, {e sorted ascending}, with
    their values. The array is owned by the trace after the call. *)

val index_of : t -> Signal_lang.Ast.ident -> int option
(** Declaration index of a signal name. *)

val name_of : t -> int -> Signal_lang.Ast.ident
(** Name of a declaration index. *)

val length : t -> int

val get :
  t -> int -> Signal_lang.Ast.ident -> Signal_lang.Types.value option
(** Value at (instant, signal); [None] = absent.
    @raise Invalid_argument if the instant is out of range. *)

val get_idx : t -> int -> int -> Signal_lang.Types.value option
(** [get] by declaration index instead of name. *)

val present_count : t -> Signal_lang.Ast.ident -> int
(** Number of instants where the signal is present. *)

val values_of : t -> Signal_lang.Ast.ident -> Signal_lang.Types.value list
(** The signal's value stream (present instants only, in order). *)

val tick_instants : t -> Signal_lang.Ast.ident -> int list
(** Instants where the signal is present. *)

val equal : t -> t -> bool
(** Structural equality: same signal names in the same order, same
    length, and the same present signals with equal values at every
    instant (values compared with {!Signal_lang.Types.equal_value}). *)

val observable : t -> Signal_lang.Ast.ident list
(** Declared signals that are not generated temporaries (no leading
    ['_'] and no ["__"] in the name), the default selection for
    chronograms and VCD dumps. *)

val chronogram :
  ?signals:Signal_lang.Ast.ident list ->
  ?from_instant:int ->
  ?until_instant:int ->
  Format.formatter -> t -> unit
(** Textual waveform, one row per signal, one column per instant:
    ['.'] absent, value otherwise (booleans as T/F, events as '!'). *)
