(** Parameterized benchmark models for the verification engines.

    [counters k] is a scaling family: [k] independent modulo-3
    counters, each advanced by its own event input [e{_ i}], so the
    process has exactly [3{^ k}] reachable states and [2{^ k}]
    stimulus combinations per instant. The per-counter one-hot pair
    [(lo, hi)] cycles [(T,F) → (F,T) → (F,F)]; the [alarm] output is
    clocked on [hi0 && lo0], which no reachable state makes true —
    so {!counters_prop} genuinely holds, at any depth.

    The family is the scaling corpus of `verify --counters` and
    `bench verify`: explicit enumeration drowns already at [k ≈ 10]
    (both in states and in the [2{^ k}] stimulus fan-out), while the
    symbolic engine's BDDs stay linear in [k]. *)

val counters_process : int -> Signal_lang.Ast.process
(** The SIGNAL source of the family member; raises [Invalid_argument]
    when [k < 1]. *)

val counters : int -> Signal_lang.Kernel.kprocess
(** Normalized kernel form of {!counters_process}. *)

val counters_inputs :
  int -> (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list
(** The exploration stimulus spec: every [e{_ i}] either absent or
    present, independently, each instant. *)

val counters_prop : Symbolic.prop
(** [Never_present "alarm"] — the property the family satisfies. *)
