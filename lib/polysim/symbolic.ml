(* Symbolic bounded reachability over BDDs: current/next/input variable
   rails, a relational-product image step, and exact error regions, all
   rebuilt from the compiled plan's introspection view. *)

module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc
module Bdd = Clocks.Bdd
module Metrics = Putil.Metrics
module Tracing = Putil.Tracing

let m_checks = Metrics.counter "explore.sym.checks"
let m_images = Metrics.counter "explore.sym.image_steps"
let m_unsupported = Metrics.counter "explore.sym.unsupported"
let m_states = Metrics.gauge "explore.sym.states"
let m_state_bits = Metrics.gauge "explore.sym.state_bits"
let m_trans_nodes = Metrics.gauge "explore.sym.trans_nodes"
let m_peak_nodes = Metrics.gauge "explore.sym.peak_nodes"
let m_gcs = Metrics.gauge "explore.sym.gc_collections"
let m_check_ns = Metrics.timer "explore.sym.check_ns"

let code_unsupported =
  Putil.Diag.code "EXPLORE-SYM-001"
    "process is outside the symbolically checkable fragment"

(* Raised (internally) on any construct the encoding cannot express
   exactly; surfaced as an EXPLORE-SYM-001 diagnostic so `--engine
   auto` can fall back to the explicit engine. *)
exception Unsupported of string

let unsup fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type prop =
  | Never_present of Ast.ident
  | Never_value of Ast.ident * Types.value

let safe_of_prop prop present =
  match prop with
  | Never_present x -> not (List.mem_assoc x present)
  | Never_value (x, v) ->
    not
      (List.exists
         (fun (n, v') -> String.equal n x && Types.equal_value v' v)
         present)

type outcome =
  | Sym_holds of { states : float; depth_used : int; fixpoint : bool }
  | Sym_cex of {
      kind : [ `Violation | `Runtime_error ];
      stimuli : (Ast.ident * Types.value) list list;
      states : float;
    }

(* ------------------------------------------------------------------ *)
(* Value identity and finite domains                                   *)
(* ------------------------------------------------------------------ *)

(* Structural identity key. NOT Types.equal_value: state codes must
   distinguish Vevent from Vbool true, and reals compare by bits. *)
let vid = function
  | Types.Vint n -> "i" ^ string_of_int n
  | Types.Vbool true -> "T"
  | Types.Vbool false -> "F"
  | Types.Vevent -> "E"
  | Types.Vreal r -> "r" ^ Int64.to_string (Int64.bits_of_float r)
  | Types.Vstring s -> "s" ^ s

(* Mirrors Compile.atom_equal / Types.equal_value (event/bool cross). *)
let veq a b =
  match a, b with
  | Types.Vevent, Types.Vevent -> true
  | Types.Vevent, Types.Vbool b | Types.Vbool b, Types.Vevent -> b
  | Types.Vint x, Types.Vint y -> x = y
  | Types.Vbool x, Types.Vbool y -> x = y
  | Types.Vreal x, Types.Vreal y -> x = y
  | Types.Vstring x, Types.Vstring y -> String.equal x y
  | _ -> false

type dom = Dset of Types.value list | Dtop

let dom_cap = 64
let queue_cap_max = 16
let part_cap = 128

let dom_add d v =
  match d with
  | Dtop -> Dtop
  | Dset vs ->
    if List.exists (fun w -> String.equal (vid w) (vid v)) vs then d
    else if List.length vs >= dom_cap then Dtop
    else Dset (vs @ [ v ])

let dom_join a b =
  match a, b with
  | Dtop, _ | _, Dtop -> Dtop
  | Dset _, Dset ws -> List.fold_left dom_add a ws

let dom_size = function Dtop -> max_int | Dset vs -> List.length vs

let bool2 = Dset [ Types.Vbool true; Types.Vbool false ]

(* Non-error result of an arithmetic binop on two concrete values;
   mirrors Compile.exec_binop (int ops, real ops sans Mod). *)
let arith bop a b =
  match a, b with
  | Types.Vint x, Types.Vint y -> (
    match bop with
    | Ast.Add -> Some (Types.Vint (x + y))
    | Ast.Sub -> Some (Types.Vint (x - y))
    | Ast.Mul -> Some (Types.Vint (x * y))
    | Ast.Div -> if y = 0 then None else Some (Types.Vint (x / y))
    | Ast.Mod -> if y = 0 then None else Some (Types.Vint (x mod y))
    | _ -> None)
  | Types.Vreal x, Types.Vreal y when bop <> Ast.Mod -> (
    match bop with
    | Ast.Add -> Some (Types.Vreal (x +. y))
    | Ast.Sub -> Some (Types.Vreal (x -. y))
    | Ast.Mul -> Some (Types.Vreal (x *. y))
    | Ast.Div -> Some (Types.Vreal (x /. y))
    | _ -> None)
  | _ -> None

(* Least fixpoint of per-signal value domains. [in_dom.(i)] is the
   domain an input signal draws from its stimulus alternatives. *)
let domains (prog : Prog.t) (in_dom : dom array) =
  let n = prog.Prog.n in
  let doms = Array.make n (Dset []) in
  let adom = function
    | Prog.Avar y -> doms.(y)
    | Prog.Aconst v -> Dset [ v ]
  in
  let cross f a b =
    match a, b with
    | Dtop, _ | _, Dtop -> Dtop
    | Dset xs, Dset ys ->
      List.fold_left
        (fun acc x ->
          List.fold_left
            (fun acc y ->
              match f x y with Some v -> dom_add acc v | None -> acc)
            acc ys)
        (Dset []) xs
  in
  let map1 f a =
    match a with
    | Dtop -> Dtop
    | Dset xs ->
      List.fold_left
        (fun acc x ->
          match f x with Some v -> dom_add acc v | None -> acc)
        (Dset []) xs
  in
  let transfer i =
    match prog.Prog.vdefs.(i) with
    | Prog.Vnone -> if prog.Prog.is_input.(i) then in_dom.(i) else Dset []
    | Prog.Vfunc (op, args) -> (
      match op, Array.length args with
      | K.Pid, 1 -> adom args.(0)
      | K.Pclock, 1 -> Dset [ Types.Vevent ]
      | K.Punop Ast.Not, 1 ->
        map1
          (function
            | Types.Vbool b -> Some (Types.Vbool (not b))
            | Types.Vevent -> Some (Types.Vbool false)
            | _ -> None)
          (adom args.(0))
      | K.Punop Ast.Neg, 1 ->
        map1
          (function
            | Types.Vint x -> Some (Types.Vint (-x))
            | Types.Vreal x -> Some (Types.Vreal (-.x))
            | _ -> None)
          (adom args.(0))
      | K.Pif, 3 -> dom_join (adom args.(1)) (adom args.(2))
      | K.Pbinop bop, 2 -> (
        match bop with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          cross (arith bop) (adom args.(0)) (adom args.(1))
        | Ast.And | Ast.Or | Ast.Xor | Ast.Eq | Ast.Neq | Ast.Lt
        | Ast.Le | Ast.Gt | Ast.Ge ->
          bool2)
      | _ -> Dset [])
    | Prog.Vdelay ->
      let d = dom_add doms.(i) prog.Prog.delay_init.(i) in
      let src = prog.Prog.delay_src.(i) in
      if src >= 0 then dom_join d doms.(src) else d
    | Prog.Vwhen a -> adom a
    | Prog.Vdefault (l, r) -> dom_join (adom l) (adom r)
    | Prog.Vprim (pi, pos) ->
      let lp = prog.Prog.prims.(pi) in
      if pos = 0 then adom (Prog.Avar lp.Prog.lp_ins.(0))
      else begin
        let cap = max 1 lp.Prog.lp_capacity in
        let d = ref (Dset []) in
        for k = 0 to cap do
          d := dom_add !d (Types.Vint k)
        done;
        !d
      end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let d' = dom_join doms.(i) (transfer i) in
      if dom_size d' <> dom_size doms.(i) then begin
        doms.(i) <- d';
        changed := true
      end
    done
  done;
  doms

(* ------------------------------------------------------------------ *)
(* Bit encodings                                                       *)
(* ------------------------------------------------------------------ *)

(* bits needed to encode codes 0..m-1 *)
let ceil_log2 m =
  if m <= 1 then 0
  else begin
    let b = ref 0 in
    while 1 lsl !b < m do
      incr b
    done;
    !b
  end

(* A finite-value register encoding over a contiguous run of state
   bits: code j <-> vals.(j), binary over ebits bits from ebase. *)
type enc = { vals : Types.value array; ebits : int; ebase : int }

(* One listed input: presence guard, optional selector rail, and the
   per-value stimulus guards (entry guards are disjoint, sum to
   [ipres]; selector codes >= m-1 alias the last value). *)
type ienc = {
  ii : int;
  ipres : Bdd.t;
  ipvar : int; (* presence var id, -1 when statically decided *)
  ivals : Types.value array;
  iselbase : int; (* first selector var id, -1 when 0/1 values *)
  iselbits : int;
  ientries : (Types.value * Bdd.t) list;
}

(* One FIFO primitive: canonical shift-register cells (cell 0 = head,
   cells >= len forced to code 0) plus an int-coded length. *)
type qenc = {
  qpi : int;
  qcap : int;
  qpolicy : Prog.overflow_policy;
  qcell : Types.value array;
  qcbits : int;
  qcbase : int array; (* per cell: first state bit *)
  qlbits : int;
  qlbase : int;
}

let vindex vals v =
  let k = vid v in
  let r = ref (-1) in
  Array.iteri (fun j w -> if !r < 0 && String.equal (vid w) k then r := j) vals;
  !r

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let run_exn ~depth ~inputs ~prop c =
  let sv = Compile.sym_view c in
  let prog = sv.Compile.sv_prog in
  let n = prog.Prog.n in
  if depth <= 0 then
    Sym_holds { states = 0.; depth_used = 0; fixpoint = false }
  else if List.exists (fun (_, alts) -> alts = []) inputs then
    (* no stimulus combination exists: the explicit engines explore
       nothing beyond the initial state *)
    Sym_holds { states = 1.; depth_used = 0; fixpoint = true }
  else begin
    let in_specs =
      List.map
        (fun (name, alts) ->
          match Prog.index_opt prog name with
          | None -> unsup "stimulus for unknown signal %s" name
          | Some i ->
            if not prog.Prog.is_input.(i) then
              unsup "stimulus for non-input signal %s" name;
            let has_none = List.mem None alts in
            let vals =
              List.fold_left
                (fun acc a ->
                  match a with
                  | None -> acc
                  | Some v ->
                    if
                      List.exists
                        (fun w -> String.equal (vid w) (vid v))
                        acc
                    then acc
                    else acc @ [ v ])
                [] alts
            in
            (i, has_none, Array.of_list vals))
        inputs
    in
    (* a doubly-listed input would make the explicit cross-product
       enumerate it twice (the later assoc entry overwriting the
       earlier stimulus write); refuse rather than approximate *)
    let seen_in = Hashtbl.create 8 in
    List.iter
      (fun (i, _, _) ->
        if Hashtbl.mem seen_in i then
          unsup "input %s listed twice" prog.Prog.names.(i);
        Hashtbl.add seen_in i ())
      in_specs;
    let in_dom = Array.make n (Dset []) in
    List.iter
      (fun (i, _, vals) -> in_dom.(i) <- Dset (Array.to_list vals))
      in_specs;
    let doms = domains prog in_dom in
    (* ---- state bit allocation: delay registers, then queues ---- *)
    let sbn = ref 0 in
    let alloc bits =
      let b = !sbn in
      sbn := !sbn + bits;
      b
    in
    let regs =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match prog.Prog.vdefs.(i) with
        | Prog.Vdelay -> (
          match doms.(i) with
          | Dtop ->
            unsup "delay register %s has an unbounded value domain"
              prog.Prog.names.(i)
          | Dset vs -> acc := (i, Array.of_list vs) :: !acc)
        | _ -> ()
      done;
      List.map
        (fun (i, vals) ->
          let b = ceil_log2 (Array.length vals) in
          (i, { vals; ebits = b; ebase = alloc b }))
        !acc
    in
    let reg_of = Array.make n None in
    List.iter (fun (i, e) -> reg_of.(i) <- Some e) regs;
    let queues =
      Array.mapi
        (fun pi lp ->
          let cap = max 1 lp.Prog.lp_capacity in
          if cap > queue_cap_max then
            unsup "queue %s capacity %d exceeds the symbolic bound %d"
              lp.Prog.lp_ki.K.ki_label cap queue_cap_max;
          let qcell =
            match doms.(lp.Prog.lp_ins.(0)) with
            | Dtop ->
              unsup "queue %s has an unbounded element domain"
                lp.Prog.lp_ki.K.ki_label
            | Dset vs -> Array.of_list vs
          in
          let qcbits = ceil_log2 (Array.length qcell) in
          let qlbits = ceil_log2 (cap + 1) in
          let qlbase = alloc qlbits in
          let qcbase = Array.init cap (fun _ -> alloc qcbits) in
          { qpi = pi; qcap = cap; qpolicy = lp.Prog.lp_policy; qcell;
            qcbits; qcbase; qlbits; qlbase })
        prog.Prog.prims
    in
    let nbits = !sbn in
    Metrics.set m_state_bits nbits;
    (* ---- variable order ----
       Current/next state bits stay interleaved (cur = v, next = v+1),
       but blocks are laid out per synchronization class with that
       class's INPUT variables immediately after its state bits. With
       inputs above every state rail instead, the transition relation
       of k independent components must remember one pending input
       constraint per component across the whole state section — an
       exponential cut. Keeping each input next to the registers it
       clocks keeps the relation linear in k (measured: the counter
       family drops from exponential to linear node counts). *)
    let class_of i = sv.Compile.sv_class_of.(i) in
    let sb_class = Array.make (max nbits 1) (-1) in
    List.iter
      (fun (i, e) -> Array.fill sb_class e.ebase e.ebits (class_of i))
      regs;
    Array.iter
      (fun q ->
        let lp = prog.Prog.prims.(q.qpi) in
        let c = class_of lp.Prog.lp_ins.(0) in
        Array.fill sb_class q.qlbase q.qlbits c;
        Array.iter (fun cb -> Array.fill sb_class cb q.qcbits c) q.qcbase)
      queues;
    let in_width (_, has_none, vals) =
      let m = Array.length vals in
      (if has_none && m > 0 then 1 else 0) + ceil_log2 m
    in
    let svar = Array.make (max nbits 1) (-1) in
    let ibase = Hashtbl.create 8 in
    let nvars =
      let vctr = ref 0 in
      let seen = Hashtbl.create 8 in
      let classes = ref [] in
      for sb = 0 to nbits - 1 do
        let c = sb_class.(sb) in
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          classes := c :: !classes
        end
      done;
      List.iter
        (fun (i, _, _) ->
          let c = class_of i in
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.add seen c ();
            classes := c :: !classes
          end)
        in_specs;
      List.iter
        (fun c ->
          for sb = 0 to nbits - 1 do
            if sb_class.(sb) = c then begin
              svar.(sb) <- !vctr;
              vctr := !vctr + 2
            end
          done;
          List.iter
            (fun ((i, _, _) as spec) ->
              if class_of i = c then begin
                Hashtbl.replace ibase i !vctr;
                vctr := !vctr + in_width spec
              end)
            in_specs)
        (List.rev !classes);
      !vctr
    in
    let mgr = Bdd.manager () in
    let zero = Bdd.zero mgr and one = Bdd.one mgr in
    let b_and = Bdd.and_ mgr
    and b_or = Bdd.or_ mgr
    and b_not = Bdd.not_ mgr in
    let cur sb = Bdd.var mgr svar.(sb) in
    let nxt sb = Bdd.var mgr (svar.(sb) + 1) in
    (* bits [base..base+bits-1] on [rail] hold the binary code *)
    let code_guard rail base bits code =
      let g = ref one in
      for b = 0 to bits - 1 do
        let v = rail (base + b) in
        g := b_and !g (if (code lsr b) land 1 = 1 then v else b_not v)
      done;
      !g
    in
    let iencs =
      List.map
        (fun (i, has_none, vals) ->
          let m = Array.length vals in
          let base = Hashtbl.find ibase i in
          let ipvar = if has_none && m > 0 then base else -1 in
          let ipres =
            if m = 0 then zero
            else if ipvar >= 0 then Bdd.var mgr ipvar
            else one
          in
          let iselbits = ceil_log2 m in
          let iselbase =
            if iselbits > 0 then base + (if ipvar >= 0 then 1 else 0)
            else -1
          in
          let irail v = Bdd.var mgr v in
          let ientries =
            if m = 0 then []
            else if m = 1 then [ (vals.(0), ipres) ]
            else begin
              let gs =
                Array.init (m - 1) (fun j ->
                  code_guard irail iselbase iselbits j)
              in
              let others = Array.fold_left b_or zero gs in
              List.init m (fun j ->
                let g = if j < m - 1 then gs.(j) else b_not others in
                (vals.(j), b_and ipres g))
            end
          in
          { ii = i; ipres; ipvar; ivals = vals; iselbase; iselbits;
            ientries })
        in_specs
    in
    let ienc_of = Array.make n None in
    List.iter (fun ie -> ienc_of.(ie.ii) <- Some ie) iencs;
    (* ---- one symbolic instant, in plan order: class presence,
       per-signal value partitions, and the exact error region.
       A partition maps each producible value to the (state, input)
       region producing it; the region left uncovered under the
       class's presence is precisely where the explicit step raises,
       so err accumulates pc ∧ ¬Σguards per value op. ---- *)
    let nclasses = sv.Compile.sv_nclasses in
    let class_of = sv.Compile.sv_class_of in
    let pres_b = Array.make nclasses zero in
    let parts : (Types.value * Bdd.t) list array = Array.make n [] in
    let err = ref zero in
    let add_err g = err := b_or !err g in
    let sum es = List.fold_left (fun a (_, g) -> b_or a g) zero es in
    let truthy es =
      sum
        (List.filter
           (fun (v, _) ->
             match v with
             | Types.Vbool true | Types.Vevent -> true
             | _ -> false)
           es)
    in
    let falsy es =
      sum
        (List.filter
           (fun (v, _) -> match v with Types.Vbool false -> true | _ -> false)
           es)
    in
    let merge es =
      let out : (string * (Types.value * Bdd.t ref)) list ref = ref [] in
      List.iter
        (fun (v, g) ->
          if not (Bdd.is_zero g) then
            let k = vid v in
            match List.assoc_opt k !out with
            | Some (_, r) -> r := b_or !r g
            | None -> out := !out @ [ (k, (v, ref g)) ])
        es;
      let es = List.map (fun (_, (v, r)) -> (v, !r)) !out in
      if List.length es > part_cap then
        unsup "a value partition exceeds %d entries" part_cap;
      es
    in
    let apart = function
      | Prog.Avar y -> parts.(y)
      | Prog.Aconst v -> [ (v, one) ]
    in
    let avail a = sum (apart a) in
    let q_len_is q l = code_guard cur q.qlbase q.qlbits l in
    let q_len_pos q = b_not (q_len_is q 0) in
    (* clear/push/pop guards in unified commit order (absent ops are
       the zero clock), mirroring Compile.commit_prim *)
    let prim_guards pi =
      let lp = prog.Prog.prims.(pi) in
      let ins = lp.Prog.lp_ins in
      let p k = pres_b.(class_of.(ins.(k))) in
      match lp.Prog.lp_ki.K.ki_prim with
      | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
        ((if Array.length ins = 3 then p 2 else zero), p 0, p 1)
      | Stdproc.Pin_event_port -> (p 1, p 0, zero)
      | Stdproc.Pout_event_port -> (zero, p 0, p 1)
    in
    (* clock-calculus BDD -> (value, error) formulas over our rails;
       mirrors Compile.bdd_env including its && short-circuits (an
       absent or unset condition variable reads false, no error) *)
    let resolve_var var =
      if var >= Array.length sv.Compile.sv_bddvars then (zero, zero)
      else
        match sv.Compile.sv_bddvars.(var) with
        | Compile.Sym_present cl -> (pres_b.(cl), zero)
        | Compile.Sym_cond bi ->
          let es = parts.(bi) in
          let nonbool =
            sum
              (List.filter
                 (fun (v, _) ->
                   match v with
                   | Types.Vbool _ | Types.Vevent -> false
                   | _ -> true)
                 es)
          in
          (truthy es, nonbool)
        | Compile.Sym_condeq (xi, k) ->
          let es = parts.(xi) in
          ( sum
              (List.filter
                 (fun (v, _) ->
                   match v with Types.Vint j -> j = k | _ -> false)
                 es),
            zero )
        | Compile.Sym_none -> (zero, zero)
    in
    let convmemo : (int, Bdd.t * Bdd.t) Hashtbl.t = Hashtbl.create 64 in
    let smgr = sv.Compile.sv_mgr in
    let rec conv_clock b =
      match Hashtbl.find_opt convmemo (Bdd.id b) with
      | Some r -> r
      | None ->
        let r =
          match Bdd.view smgr b with
          | `Leaf bb -> ((if bb then one else zero), zero)
          | `Node (var, lo, hi) ->
            let vv, ve = resolve_var var in
            let lv, le = conv_clock lo in
            let hv, he = conv_clock hi in
            ( b_or (b_and vv hv) (b_and (b_not vv) lv),
              b_or ve (b_or (b_and vv he) (b_and (b_not vv) le)) )
        in
        Hashtbl.add convmemo (Bdd.id b) r;
        r
    in
    let compute_pres cls =
      match sv.Compile.sv_pdefs.(cls) with
      | Compile.Sym_free -> zero
      | Compile.Sym_input ms ->
        let g_of i =
          match ienc_of.(i) with Some ie -> ie.ipres | None -> zero
        in
        let pc = List.fold_left (fun a i -> b_or a (g_of i)) zero ms in
        (* synchronous inputs disagreeing on presence is a step error *)
        List.iter (fun i -> add_err (b_and pc (b_not (g_of i)))) ms;
        pc
      | Compile.Sym_prim (pi, pos) -> (
        let q = queues.(pi) in
        let cl, pu, po = prim_guards pi in
        match prog.Prog.prims.(pi).Prog.lp_ki.K.ki_prim, pos with
        | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
          b_and po (b_or pu (b_and (b_not cl) (q_len_pos q)))
        | Stdproc.Pin_event_port, 0 -> b_and cl (q_len_pos q)
        | Stdproc.Pout_event_port, 0 -> b_and po (b_or pu (q_len_pos q))
        | _, _ -> unsup "unsupported primitive presence shape")
      | Compile.Sym_derived ->
        let v, e = conv_clock sv.Compile.sv_clock_bdd.(cls) in
        add_err e;
        v
      | Compile.Sym_alias _ ->
        (* handled at the plan-order walk, where the source class's
           presence formula is already available *)
        assert false
    in
    (* non-error result regions of a binop, mirroring
       Compile.exec_binop's checks and short-circuits exactly *)
    let binop_entries bop ea eb =
      let ab = sum eb in
      match bop with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
        List.concat_map
          (fun (va, ga) ->
            List.filter_map
              (fun (vb, gb) ->
                match arith bop va vb with
                | Some v -> Some (v, b_and ga gb)
                | None -> None)
              eb)
          ea
      | Ast.And ->
        let ta = truthy ea and fa = falsy ea in
        let tb = truthy eb and fb = falsy eb in
        (* false && x short-circuits x's boolean check *)
        [ (Types.Vbool false, b_and fa ab);
          (Types.Vbool true, b_and ta tb);
          (Types.Vbool false, b_and ta fb) ]
      | Ast.Or ->
        let ta = truthy ea and fa = falsy ea in
        let tb = truthy eb and fb = falsy eb in
        [ (Types.Vbool true, b_and ta ab);
          (Types.Vbool true, b_and fa tb);
          (Types.Vbool false, b_and fa fb) ]
      | Ast.Xor ->
        let ta = truthy ea and fa = falsy ea in
        let tb = truthy eb and fb = falsy eb in
        [ (Types.Vbool true, b_or (b_and ta fb) (b_and fa tb));
          (Types.Vbool false, b_or (b_and ta tb) (b_and fa fb)) ]
      | Ast.Eq | Ast.Neq ->
        let neg = bop = Ast.Neq in
        List.concat_map
          (fun (va, ga) ->
            List.map
              (fun (vb, gb) ->
                (Types.Vbool (veq va vb <> neg), b_and ga gb))
              eb)
          ea
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        List.concat_map
          (fun (va, ga) ->
            List.filter_map
              (fun (vb, gb) ->
                let cmp =
                  match va, vb with
                  | Types.Vint x, Types.Vint y -> Some (Int.compare x y)
                  | Types.Vreal x, Types.Vreal y -> Some (Float.compare x y)
                  | Types.Vstring x, Types.Vstring y ->
                    Some (String.compare x y)
                  | _ -> None
                in
                match cmp with
                | None -> None
                | Some r ->
                  let b =
                    match bop with
                    | Ast.Lt -> r < 0
                    | Ast.Le -> r <= 0
                    | Ast.Gt -> r > 0
                    | _ -> r >= 0
                  in
                  Some (Types.Vbool b, b_and ga gb))
              eb)
          ea
    in
    let compute_entries i =
      match prog.Prog.vdefs.(i) with
      | Prog.Vnone -> (
        match ienc_of.(i) with Some ie -> ie.ientries | None -> [])
      | Prog.Vfunc (op, args) -> (
        match op, Array.length args with
        | K.Pid, 1 -> apart args.(0)
        | K.Pclock, 1 -> [ (Types.Vevent, avail args.(0)) ]
        | K.Punop Ast.Not, 1 ->
          List.filter_map
            (fun (v, g) ->
              match v with
              | Types.Vbool b -> Some (Types.Vbool (not b), g)
              | Types.Vevent -> Some (Types.Vbool false, g)
              | _ -> None)
            (apart args.(0))
        | K.Punop Ast.Neg, 1 ->
          List.filter_map
            (fun (v, g) ->
              match v with
              | Types.Vint x -> Some (Types.Vint (-x), g)
              | Types.Vreal x -> Some (Types.Vreal (-.x), g)
              | _ -> None)
            (apart args.(0))
        | K.Pif, 3 ->
          let ea = apart args.(0) in
          let et = apart args.(1) and ef = apart args.(2) in
          let at = sum et and af = sum ef in
          let ct = truthy ea and cf = falsy ea in
          List.map (fun (v, g) -> (v, b_and g (b_and ct af))) et
          @ List.map (fun (v, g) -> (v, b_and g (b_and cf at))) ef
        | K.Pbinop bop, 2 -> binop_entries bop (apart args.(0)) (apart args.(1))
        | _ -> [] (* malformed arity: always errors when present *))
      | Prog.Vdelay -> (
        match reg_of.(i) with
        | Some e ->
          List.init (Array.length e.vals) (fun j ->
            (e.vals.(j), code_guard cur e.ebase e.ebits j))
        | None -> assert false)
      | Prog.Vwhen a -> apart a
      | Prog.Vdefault (l, r) -> (
        match l with
        | Prog.Aconst v -> [ (v, one) ]
        | Prog.Avar y ->
          let pcy = pres_b.(class_of.(y)) in
          let rest =
            match r with
            | Prog.Aconst v -> [ (v, b_not pcy) ]
            | Prog.Avar z ->
              List.map (fun (v, g) -> (v, b_and g (b_not pcy))) parts.(z)
          in
          parts.(y) @ rest)
      | Prog.Vprim (pi, pos) -> (
        let lp = prog.Prog.prims.(pi) in
        let q = queues.(pi) in
        let cl, pu, po = prim_guards pi in
        let head_entries g =
          List.init (Array.length q.qcell) (fun j ->
            (q.qcell.(j), b_and g (code_guard cur q.qcbase.(0) q.qcbits j)))
        in
        match lp.Prog.lp_ki.K.ki_prim, pos with
        | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
          let qpos = b_and (b_not cl) (q_len_pos q) in
          head_entries qpos
          @ List.map
              (fun (v, g) -> (v, b_and g (b_not qpos)))
              parts.(lp.Prog.lp_ins.(0))
        | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 1 ->
          let out = ref [] in
          for l = 0 to q.qcap do
            let lg = q_len_is q l in
            List.iter
              (fun (gc, qlen0) ->
                let pushed =
                  let m = qlen0 + 1 in
                  if m < q.qcap then m else q.qcap
                in
                List.iter
                  (fun (gp, n1) ->
                    List.iter
                      (fun (go, res) ->
                        out :=
                          ( Types.Vint res,
                            b_and lg (b_and gc (b_and gp go)) )
                          :: !out)
                      [ (po, (if n1 > 0 then n1 - 1 else n1));
                        (b_not po, n1) ])
                  [ (pu, pushed); (b_not pu, qlen0) ])
              [ (cl, 0); (b_not cl, l) ]
          done;
          !out
        | Stdproc.Pin_event_port, 0 -> head_entries one
        | Stdproc.Pin_event_port, 1 ->
          List.init (q.qcap + 1) (fun l -> (Types.Vint l, q_len_is q l))
        | Stdproc.Pout_event_port, 0 ->
          let lpos = q_len_pos q in
          head_entries lpos
          @ List.map
              (fun (v, g) -> (v, b_and g (b_not lpos)))
              parts.(lp.Prog.lp_ins.(0))
        | _, _ -> unsup "unsupported primitive value shape")
    in
    (* walk the toposorted schedule *)
    Array.iter
      (function
        | `Pres cls ->
          pres_b.(cls) <-
            (match sv.Compile.sv_pdefs.(cls) with
            (* plan order guarantees the source class is computed *)
            | Compile.Sym_alias src -> pres_b.(src)
            | _ -> compute_pres cls)
        | `Val i ->
          let pc = pres_b.(class_of.(i)) in
          let es =
            merge (List.map (fun (v, g) -> (v, b_and g pc)) (compute_entries i))
          in
          parts.(i) <- es;
          add_err (b_and pc (b_not (sum es))))
      sv.Compile.sv_order;
    (* ---- transition relation: next-rail constraints over delay
       registers and queue shift-registers; error regions make no
       transition ---- *)
    let xnor a b = b_not (Bdd.xor_ mgr a b) in
    let t_rel = ref one in
    let () =
      Tracing.with_span "explore.sym.build" @@ fun () ->
      List.iter
        (fun (i, e) ->
          let src = prog.Prog.delay_src.(i) in
          let psrc = if src >= 0 then pres_b.(class_of.(src)) else zero in
          let m = Array.length e.vals in
          let ng = Array.make m zero in
          if src >= 0 then
            List.iter
              (fun (v, g) ->
                let j = vindex e.vals v in
                if j < 0 then
                  unsup "register %s: committed value outside its domain"
                    prog.Prog.names.(i)
                else ng.(j) <- b_or ng.(j) g)
              parts.(src);
          for j = 0 to m - 1 do
            ng.(j) <-
              b_or ng.(j)
                (b_and (b_not psrc) (code_guard cur e.ebase e.ebits j))
          done;
          for b = 0 to e.ebits - 1 do
            let f = ref zero in
            for j = 0 to m - 1 do
              if (j lsr b) land 1 = 1 then f := b_or !f ng.(j)
            done;
            t_rel := b_and !t_rel (xnor (nxt (e.ebase + b)) !f)
          done)
        regs;
      Array.iter
        (fun q ->
          let lp = prog.Prog.prims.(q.qpi) in
          let cl, pu, po = prim_guards q.qpi in
          (* bit formulas of the pushed value's cell code *)
          let pv = Array.make (max 1 q.qcbits) zero in
          List.iter
            (fun (v, g) ->
              let j = vindex q.qcell v in
              if j >= 0 then
                for b = 0 to q.qcbits - 1 do
                  if (j lsr b) land 1 = 1 then pv.(b) <- b_or pv.(b) g
                done)
            parts.(lp.Prog.lp_ins.(0));
          let len_f = Array.make (max 1 q.qlbits) zero in
          let cell_f = Array.make_matrix q.qcap (max 1 q.qcbits) zero in
          (* [lay] is the final live layout: `O j = old cell j, `N =
             the pushed value; dead cells keep code 0 *)
          let add_branch g lay =
            if not (Bdd.is_zero g) then begin
              let nl = Array.length lay in
              for b = 0 to q.qlbits - 1 do
                if (nl lsr b) land 1 = 1 then
                  len_f.(b) <- b_or len_f.(b) g
              done;
              Array.iteri
                (fun k src ->
                  match src with
                  | `N ->
                    for b = 0 to q.qcbits - 1 do
                      cell_f.(k).(b) <-
                        b_or cell_f.(k).(b) (b_and g pv.(b))
                    done
                  | `O j ->
                    for b = 0 to q.qcbits - 1 do
                      cell_f.(k).(b) <-
                        b_or cell_f.(k).(b)
                          (b_and g (cur (q.qcbase.(j) + b)))
                    done)
                lay
            end
          in
          for l = 0 to q.qcap do
            let lg = q_len_is q l in
            List.iter
              (fun (gc, l0) ->
                List.iter
                  (fun (gp, push) ->
                    let after_push =
                      if not push then
                        Some (Array.init l0 (fun k -> `O k))
                      else if l0 < q.qcap then
                        Some
                          (Array.init (l0 + 1) (fun k ->
                               if k = l0 then `N else `O k))
                      else
                        match q.qpolicy with
                        | Prog.Drop_oldest ->
                          Some
                            (Array.init q.qcap (fun k ->
                                 if k = q.qcap - 1 then `N else `O (k + 1)))
                        | Prog.Drop_newest ->
                          Some (Array.init q.qcap (fun k -> `O k))
                        | Prog.Overflow_error -> None
                    in
                    match after_push with
                    | None ->
                      (* overflow with Error policy aborts the step *)
                      add_err (b_and lg (b_and gc gp))
                    | Some lay ->
                      List.iter
                        (fun (go, pop) ->
                          let l1 = Array.length lay in
                          let fin =
                            if pop && l1 > 0 then Array.sub lay 1 (l1 - 1)
                            else lay
                          in
                          add_branch (b_and lg (b_and gc (b_and gp go))) fin)
                        [ (po, true); (b_not po, false) ])
                  [ (pu, true); (b_not pu, false) ])
              [ (cl, 0); (b_not cl, l) ]
          done;
          for b = 0 to q.qlbits - 1 do
            t_rel := b_and !t_rel (xnor (nxt (q.qlbase + b)) len_f.(b))
          done;
          for k = 0 to q.qcap - 1 do
            for b = 0 to q.qcbits - 1 do
              t_rel :=
                b_and !t_rel (xnor (nxt (q.qcbase.(k) + b)) cell_f.(k).(b))
            done
          done)
        queues
    in
    let err_f = !err in
    let bad =
      match prop with
      | Never_present x -> (
        match Prog.index_opt prog x with
        | None -> zero
        | Some i -> pres_b.(class_of.(i)))
      | Never_value (x, v) -> (
        match Prog.index_opt prog x with
        | None -> zero
        | Some i ->
          sum (List.filter (fun (w, _) -> veq w v) parts.(i)))
    in
    let init_b =
      let g = ref one in
      List.iter
        (fun (i, e) ->
          let j = vindex e.vals prog.Prog.delay_init.(i) in
          if j < 0 then
            unsup "register %s: initial value outside its domain"
              prog.Prog.names.(i);
          g := b_and !g (code_guard cur e.ebase e.ebits j))
        regs;
      Array.iter
        (fun q ->
          for b = 0 to q.qlbits - 1 do
            g := b_and !g (b_not (cur (q.qlbase + b)))
          done;
          for k = 0 to q.qcap - 1 do
            for b = 0 to q.qcbits - 1 do
              g := b_and !g (b_not (cur (q.qcbase.(k) + b)))
            done
          done)
        queues;
      !g
    in
    let cube_cur_in =
      let l = ref [] in
      for sb = 0 to nbits - 1 do
        l := svar.(sb) :: !l
      done;
      List.iter
        (fun ie ->
          if ie.ipvar >= 0 then l := ie.ipvar :: !l;
          for b = 0 to ie.iselbits - 1 do
            l := (ie.iselbase + b) :: !l
          done)
        iencs;
      Bdd.cube mgr !l
    in
    let cube_next =
      Bdd.cube mgr (List.init nbits (fun sb -> svar.(sb) + 1))
    in
    let rmap =
      let map = Array.init nvars (fun v -> v) in
      for sb = 0 to nbits - 1 do
        map.(svar.(sb) + 1) <- svar.(sb)
      done;
      map
    in
    Metrics.set m_trans_nodes (Bdd.node_count mgr);
    (* ---- frontier iteration with on-growth compaction ---- *)
    let trans = ref (b_and !t_rel (b_not err_f)) in
    let bad = ref bad and err_f = ref err_f in
    let init_r = ref init_b
    and ccube = ref cube_cur_in
    and ncube = ref cube_next in
    let r_set = ref init_b and front = ref init_b in
    let layers = ref [ init_b ] in (* newest first: hd = current F *)
    let peak = ref (Bdd.node_count mgr) in
    let note_peak () =
      let nc = Bdd.node_count mgr in
      if nc > !peak then peak := nc
    in
    let gc_threshold = ref (max 65536 (4 * Bdd.node_count mgr)) in
    let maybe_gc () =
      if Bdd.node_count mgr > !gc_threshold then begin
        let lay = Array.of_list !layers in
        let roots =
          Array.concat
            [ [| !trans; !bad; !err_f; !init_r; !ccube; !ncube;
                 !r_set; !front |];
              lay ]
        in
        let live = Bdd.gc mgr ~roots in
        trans := roots.(0);
        bad := roots.(1);
        err_f := roots.(2);
        init_r := roots.(3);
        ccube := roots.(4);
        ncube := roots.(5);
        r_set := roots.(6);
        front := roots.(7);
        layers := Array.to_list (Array.sub roots 8 (Array.length lay));
        gc_threshold := max 65536 (4 * live);
        Metrics.set m_gcs (fst (Bdd.gc_stats mgr))
      end
    in
    let violation = ref None in
    let fixpoint = ref false in
    let depth_used = ref 0 in
    let () =
      Tracing.with_span "explore.sym.fixpoint"
        ~args:[ ("depth", Tracing.Aint depth) ]
      @@ fun () ->
      let d = ref 1 in
      while !violation = None && (not !fixpoint) && !d <= depth do
        (* step !d executes from frontier F_{d-1} = !front *)
        let cbad = b_and !front (b_and !bad (b_not !err_f)) in
        if not (Bdd.is_zero cbad) then
          violation := Some (`Violation, !d, cbad)
        else begin
          let cerr = b_and !front !err_f in
          if not (Bdd.is_zero cerr) then
            violation := Some (`Runtime_error, !d, cerr)
          else begin
            depth_used := !d;
            if !d < depth then begin
              Metrics.incr m_images;
              let img =
                Bdd.rename mgr ~map:rmap
                  (Bdd.and_exists mgr ~cube:!ccube !trans !front)
              in
              let fresh = Bdd.diff mgr img !r_set in
              if Bdd.is_zero fresh then fixpoint := true
              else begin
                r_set := b_or !r_set fresh;
                front := fresh;
                layers := fresh :: !layers;
                note_peak ();
                maybe_gc ()
              end
            end;
            incr d
          end
        end
      done
    in
    let cur_vars =
      let a = Array.sub svar 0 nbits in
      Array.sort compare a;
      a
    in
    let states = Bdd.sat_count mgr ~vars:cur_vars !r_set in
    Metrics.set m_states (int_of_float states);
    Metrics.set m_peak_nodes !peak;
    Metrics.set m_gcs (fst (Bdd.gc_stats mgr));
    match !violation with
    | None ->
      Sym_holds { states; depth_used = !depth_used; fixpoint = !fixpoint }
    | Some (kind, vd, region) ->
      (* Extract one satisfying run: any_sat on the violating layer
         gives the step-vd inputs and the state before it (a BDD path
         pins every constrained variable, so the default-false
         completion still lies inside the layer), then walk back
         through the saved frontiers via backward images. *)
      let assign_of b =
        match Bdd.any_sat mgr b with
        | None -> assert false
        | Some l ->
          let h = Hashtbl.create 32 in
          List.iter (fun (v, x) -> Hashtbl.replace h v x) l;
          h
      in
      let getv h v =
        match Hashtbl.find_opt h v with Some b -> b | None -> false
      in
      let state_of h = Array.init nbits (fun sb -> getv h svar.(sb)) in
      let stim_of h =
        List.filter_map
          (fun ie ->
            let presb =
              if ie.ipvar >= 0 then getv h ie.ipvar
              else not (Bdd.is_zero ie.ipres)
            in
            if not presb then None
            else begin
              let m = Array.length ie.ivals in
              let code = ref 0 in
              for b = 0 to ie.iselbits - 1 do
                if getv h (ie.iselbase + b) then
                  code := !code lor (1 lsl b)
              done;
              let j = if !code < m - 1 then !code else m - 1 in
              Some (prog.Prog.names.(ie.ii), ie.ivals.(j))
            end)
          iencs
      in
      let next_state_cube s =
        let g = ref one in
        for sb = 0 to nbits - 1 do
          let v = nxt sb in
          g := b_and !g (if s.(sb) then v else b_not v)
        done;
        !g
      in
      let lay = Array.of_list (List.rev !layers) in
      (* lay.(t) = F_t *)
      let h0 = assign_of region in
      let stimuli = ref [ stim_of h0 ] in
      let s = ref (state_of h0) in
      for t = vd - 1 downto 1 do
        let pre =
          b_and
            (Bdd.and_exists mgr ~cube:!ncube !trans (next_state_cube !s))
            lay.(t - 1)
        in
        let h = assign_of pre in
        stimuli := stim_of h :: !stimuli;
        s := state_of h
      done;
      Sym_cex { kind; stimuli = !stimuli; states }
  end

let run ?(depth = 8) ~inputs ~prop c =
  Metrics.incr m_checks;
  Tracing.with_span "explore.sym.check"
    ~args:[ ("depth", Tracing.Aint depth) ]
  @@ fun () ->
  Metrics.time m_check_ns @@ fun () ->
  match run_exn ~depth ~inputs ~prop c with
  | outcome -> Ok outcome
  | exception Unsupported m ->
    Metrics.incr m_unsupported;
    Error (Putil.Diag.errorf ~code:code_unsupported "%s" m)
