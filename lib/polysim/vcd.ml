module Ast = Signal_lang.Ast
module Types = Signal_lang.Types

(* VCD identifier codes: printable ASCII 33..126, possibly multi-char. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

type kind = Kwire1 | Kvec32 | Kreal | Kstring

let kind_of_type = function
  | Types.Tevent | Types.Tbool -> Kwire1
  | Types.Tint -> Kvec32
  | Types.Treal -> Kreal
  | Types.Tstring -> Kstring

let bits32 n =
  if n = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let n = n land 0xFFFFFFFF in
    let started = ref false in
    for i = 31 downto 0 do
      let b = (n lsr i) land 1 in
      if b = 1 then started := true;
      if !started then Buffer.add_char buf (if b = 1 then '1' else '0')
    done;
    Buffer.contents buf
  end

(* String values travel on a space-delimited line ([sVALUE code]), so
   whitespace, '%' and control characters are percent-encoded; the
   literal value "x" is encoded too, else it would collide with the
   absent marker [sx]. [Vcd_reader] reverses this. *)
let escape_string s =
  if s = "x" then "%78"
  else begin
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        let n = Char.code c in
        if c = '%' || c = ' ' || n < 0x21 || n = 0x7F then
          Buffer.add_string buf (Printf.sprintf "%%%02X" n)
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let dump_value buf code kind v =
  match kind, v with
  | Kwire1, Some value ->
    let b =
      match value with
      | Types.Vevent -> true
      | Types.Vbool b -> b
      | Types.Vint n -> n <> 0
      | Types.Vreal r -> r <> 0.0
      | Types.Vstring s -> s <> ""
    in
    Buffer.add_string buf (Printf.sprintf "%c%s\n" (if b then '1' else '0') code)
  | Kwire1, None -> Buffer.add_string buf (Printf.sprintf "x%s\n" code)
  | Kvec32, Some (Types.Vint n) ->
    Buffer.add_string buf (Printf.sprintf "b%s %s\n" (bits32 n) code)
  | Kvec32, Some _ -> Buffer.add_string buf (Printf.sprintf "bx %s\n" code)
  | Kvec32, None -> Buffer.add_string buf (Printf.sprintf "bx %s\n" code)
  | Kreal, Some (Types.Vreal r) ->
    Buffer.add_string buf (Printf.sprintf "r%.17g %s\n" r code)
  | Kreal, (Some _ | None) ->
    (* explicit absent marker — [r0] would be indistinguishable from a
       present 0.0 *)
    Buffer.add_string buf (Printf.sprintf "rx %s\n" code)
  | Kstring, Some (Types.Vstring s) ->
    Buffer.add_string buf (Printf.sprintf "s%s %s\n" (escape_string s) code)
  | Kstring, (Some _ | None) ->
    Buffer.add_string buf (Printf.sprintf "sx %s\n" code)

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '.' then '_' else c) name

(* distinct trace names can sanitize to the same identifier ("a.b" and
   "a b" both become "a_b"); suffix later arrivals so every $var keeps
   a distinct declared name *)
let uniquify names =
  let seen = Hashtbl.create 16 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
        Hashtbl.replace seen n 1;
        n
      | Some k ->
        let rec fresh k =
          let cand = Printf.sprintf "%s__%d" n (k + 1) in
          if Hashtbl.mem seen cand then fresh (k + 1)
          else begin
            Hashtbl.replace seen n (k + 1);
            Hashtbl.replace seen cand 1;
            cand
          end
        in
        fresh k)
    names

let to_string ?signals ?(module_name = "top") ?(timescale = "1 ms")
    ?instant_us tr =
  (* arbitrary multipliers ("2000 us") are illegal VCD timescales, so a
     real tick duration is rendered as "1 us" with scaled timestamps *)
  let timescale, scale =
    match instant_us with
    | Some k when k > 0 -> ("1 us", k)
    | Some k ->
      invalid_arg
        (Printf.sprintf "Vcd.to_string: instant_us must be positive (%d)" k)
    | None -> (timescale, 1)
  in
  let names = match signals with Some l -> l | None -> Trace.observable tr in
  let types =
    List.map
      (fun vd -> (vd.Ast.var_name, vd.Ast.var_type))
      (Trace.declarations tr)
  in
  let ids = uniquify (List.map sanitize names) in
  let entries =
    List.mapi
      (fun i (name, id) ->
        let typ =
          Option.value ~default:Types.Tint (List.assoc_opt name types)
        in
        (* resolve the trace index once; per-instant sampling below is
           then index-based (undeclared signals stay absent) *)
        (id, code_of_index i, kind_of_type typ, Trace.index_of tr name))
      (List.combine names ids)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date\n  polychrony-aadl simulation\n$end\n";
  Buffer.add_string buf "$version\n  polysim VCD writer\n$end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" module_name);
  List.iter
    (fun (id, code, kind, _) ->
      let decl =
        match kind with
        | Kwire1 -> Printf.sprintf "$var wire 1 %s %s $end\n" code id
        | Kvec32 ->
          Printf.sprintf "$var wire 32 %s %s [31:0] $end\n" code id
        | Kreal -> Printf.sprintf "$var real 64 %s %s $end\n" code id
        | Kstring ->
          Printf.sprintf "$var string 1 %s %s $end\n" code id
      in
      Buffer.add_string buf decl)
    entries;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* initial values: everything absent *)
  Buffer.add_string buf "$dumpvars\n";
  List.iter (fun (_, code, kind, _) -> dump_value buf code kind None) entries;
  Buffer.add_string buf "$end\n";
  let entries = Array.of_list entries in
  let prev = Array.make (Array.length entries) None in
  for i = 0 to Trace.length tr - 1 do
    let changed = ref false in
    Array.iteri
      (fun k (_, code, kind, xi) ->
        let now =
          match xi with Some xi -> Trace.get_idx tr i xi | None -> None
        in
        if now <> prev.(k) then begin
          prev.(k) <- now;
          if not !changed then begin
            changed := true;
            Buffer.add_string buf (Printf.sprintf "#%d\n" (i * scale))
          end;
          dump_value buf code kind now
        end)
      entries
  done;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (Trace.length tr * scale));
  Buffer.contents buf

let to_file ?signals ?module_name ?timescale ?instant_us path tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (to_string ?signals ?module_name ?timescale ?instant_us tr))
