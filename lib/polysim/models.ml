module Ast = Signal_lang.Ast
module B = Signal_lang.Builder
module Types = Signal_lang.Types

let sname i s = Printf.sprintf "%s%d" s i

let counters_process k =
  if k < 1 then invalid_arg "Models.counters: k must be >= 1";
  let ids = List.init k Fun.id in
  let inputs = List.map (fun i -> Ast.var (sname i "e") Types.Tevent) ids in
  let locals =
    List.concat_map
      (fun i ->
        [ Ast.var (sname i "plo") Types.Tbool;
          Ast.var (sname i "phi") Types.Tbool;
          Ast.var (sname i "lo") Types.Tbool;
          Ast.var (sname i "hi") Types.Tbool ])
      ids
  in
  let counter i =
    let e = sname i "e" and lo = sname i "lo" and hi = sname i "hi" in
    let plo = sname i "plo" and phi = sname i "phi" in
    B.[
      plo := delay ~init:(Types.Vbool false) (v lo);
      phi := delay ~init:(Types.Vbool false) (v hi);
      lo := not_ (v plo) && not_ (v phi);
      hi := v plo;
      v lo ^= v e;
    ]
  in
  let alarm =
    B.[ "alarm" := when_ ev (v (sname 0 "hi") && v (sname 0 "lo")) ]
  in
  B.proc
    ~name:(Printf.sprintf "counters%d" k)
    ~locals ~inputs
    ~outputs:[ Ast.var "alarm" Types.Tevent ]
    (List.concat_map counter ids @ alarm)

let counters k = Signal_lang.Normalize.process_exn (counters_process k)

let counters_inputs k =
  List.init k (fun i -> (sname i "e", [ None; Some Types.Vevent ]))

let counters_prop = Symbolic.Never_present "alarm"
