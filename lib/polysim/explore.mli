(** Bounded exhaustive exploration of a kernel process — the paper's
    "model checking" connection, in bounded form.

    At each instant every input nondeterministically takes one of the
    stimulus alternatives supplied for it; the explorer walks all
    combinations up to the given depth, pruning states (delay memories
    + FIFO contents) already visited, and checks a safety predicate on
    every reached reaction.

    The state pruning makes exploration complete for finite-state
    processes within the depth bound, and in general turns the search
    into bounded model checking: [`Holds] means no reachable violation
    within [depth] instants.

    Three engines share the contract:

    - {!check} runs a breadth-first frontier search, one depth slice at
      a time, fanned out over an OCaml 5 domain pool
      ({!Putil.Domain_pool}) with a sharded visited table
      ({!Putil.Shard_tbl}) keyed by the fixed-width {!Compile.state_key}
      digest. It is deterministic: any [jobs] value and any scheduling
      yield the same verdict, the same counterexample (the shallowest,
      and among those the lexicographically least in (frontier-position,
      stimulus-index) order), and the same state count.
    - {!check_dfs} is the original sequential depth-first search, kept
      as the reference semantics in the test suite.
    - {!check_symbolic} delegates to {!Symbolic}: BDD image computation
      instead of state enumeration, with any symbolic counterexample
      replayed on the explicit simulator before it is reported.

    The per-instant stimulus combinations are enumerated by a
    mixed-radix index iterator, never materialized as a product list,
    so a wide input interface costs no setup allocation — only the
    (unavoidable) [radix^inputs] step work. *)

type verdict =
  | Holds
      (** no violation within the bound *)
  | Violated of (Signal_lang.Ast.ident * Signal_lang.Types.value) list list
      (** a counterexample: the stimulus sequence leading to the
          violation, oldest first *)

val check :
  ?depth:int ->
  ?jobs:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  safe:((Signal_lang.Ast.ident * Signal_lang.Types.value) list -> bool) ->
  Signal_lang.Kernel.kprocess ->
  (verdict * int, Putil.Diag.t) result
(** [check ~inputs ~safe kp] explores up to [depth] (default 8)
    instants. [inputs] lists, per input signal, its alternatives each
    instant ([None] = absent, [Some v] = present with value [v]); the
    instant's stimulus is one choice per input (cartesian product).
    [safe] receives each reaction's present signals. Returns the
    verdict and the number of distinct states explored. Fails — with a
    coded diagnostic ([EXPLORE-COMPILE-001] / [EXPLORE-SIM-001] /
    [EXPLORE-STIM-001]), never an exception, so `verify` keeps its
    0/1/2 exit contract — when the process does not compile (causality
    cycle), a stimulus names an unknown or non-input signal with a
    present alternative, the combination space exceeds [2^30] per
    instant, or a simulation error occurs outside the property (e.g.
    division by zero).

    [jobs] (default: the [EXPLORE_JOBS] environment variable, else 1)
    spreads each depth slice over that many domains; [jobs:1] runs
    entirely on the calling domain. The verdict, counterexample and
    state count do not depend on [jobs]. [safe] is called concurrently
    from several domains when [jobs > 1], so it must be thread-safe
    (pure predicates, the common case, are). *)

val check_dfs :
  ?depth:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  safe:((Signal_lang.Ast.ident * Signal_lang.Types.value) list -> bool) ->
  Signal_lang.Kernel.kprocess ->
  (verdict * int, Putil.Diag.t) result
(** Sequential depth-first exploration — same contract as {!check} with
    [jobs:1], but the counterexample is the first found in depth-first
    order (not necessarily shallowest) and a state may be re-expanded
    when reached again with a larger remaining budget. Kept as the
    reference implementation the parallel search is validated against. *)

val check_symbolic :
  ?depth:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  prop:Symbolic.prop ->
  Signal_lang.Kernel.kprocess ->
  (verdict * int, Putil.Diag.t) result
(** Bounded check by symbolic reachability ({!Symbolic.run}) — same
    verdict contract as {!check} with [safe = Symbolic.safe_of_prop
    prop], but the state space is traversed as BDD image computations,
    so state counts far beyond what enumeration can touch complete in
    milliseconds. The returned count is the exact number of distinct
    reachable states (it may exceed what {!check} could ever visit).

    A symbolic counterexample is not trusted as-is: its stimulus
    sequence is replayed on a fresh explicit instance, and only a
    replay that actually violates the property (or raises, for a
    runtime-error counterexample — then reported as
    [EXPLORE-SIM-001], exactly like {!check}) is returned as
    [Violated]. A replay that diverges from the symbolic verdict is a
    bug surfaced as [EXPLORE-SYM-002]. Processes outside the symbolic
    fragment fail with [EXPLORE-SYM-001] ({!Symbolic.code_unsupported})
    so callers can fall back to an explicit engine. *)

val reachable_states :
  ?depth:int ->
  ?jobs:int ->
  inputs:(Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  Signal_lang.Kernel.kprocess ->
  (int, Putil.Diag.t) result
(** Count of distinct (state, depth-independent) process states reached
    within the bound — a small verification metric. *)
