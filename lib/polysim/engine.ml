module K = Signal_lang.Kernel
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc
module Metrics = Putil.Metrics

let m_instants = Metrics.counter "engine.instants"
let m_fixpoint_iters = Metrics.counter "engine.fixpoint_iters"
let m_defaults = Metrics.counter "engine.defaults"
let m_step_ns = Metrics.timer "engine.step_ns"

exception Sim_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Sim_error m)) fmt

type presence = Unknown | Present | Absent

type prim_state = {
  lp : Prog.lprim;
  queue : Types.value Queue.t;
  frozen : Types.value Queue.t;   (* in_event_port only *)
  mutable overflows : int;
}

(* All per-signal state is indexed by the dense signal index of the
   shared program IR (Prog): the fixpoint loop is pure array reads and
   writes, names are only materialized in diagnostics and results. *)
type t = {
  prog : Prog.t;
  default_order : int array;
      (* unknown-presence defaulting order: dataflow sources first, so
         a defaulted sink never contradicts a later-resolved source *)
  rank : int array;  (* inverse of default_order *)
  delay_state : Types.value array;  (* indexed by dst *)
  prims : prim_state array;
  tr : Trace.t;
  mutable instants : int;
  mutable free : int;      (* defaulted-to-absent decisions *)
  (* per-instant scratch, allocated once *)
  pres : presence array;
  vals : Types.value option array;
  mutable changed : bool;
}

let create kp =
  Putil.Tracing.with_span "engine.create" @@ fun () ->
  let prog = Prog.of_kprocess kp in
  let n = prog.Prog.n in
  let delay_state = Array.copy prog.Prog.delay_init in
  let prims =
    Array.map
      (fun lp ->
        { lp; queue = Queue.create (); frozen = Queue.create ();
          overflows = 0 })
      prog.Prog.prims
  in
  let default_order =
    match
      Analysis.Digraph.topological_sort
        (Analysis.Deadlock.dependency_graph kp)
    with
    | Ok order ->
      (* topological prefix, then remaining signals in declaration
         order; a seen-array keeps the construction linear *)
      let seen = Array.make (max n 1) false in
      let acc = ref [] in
      List.iter
        (fun x ->
          match Prog.index_opt prog x with
          | Some i when not seen.(i) ->
            seen.(i) <- true;
            acc := i :: !acc
          | Some _ | None -> ())
        order;
      for i = n - 1 downto 0 do
        if not seen.(i) then acc := i :: !acc
      done;
      (* both pieces were accumulated in reverse *)
      let arr = Array.of_list !acc in
      let len = Array.length arr in
      Array.init len (fun k -> arr.(len - 1 - k))
    | Error _ -> Array.init n Fun.id
  in
  let rank = Array.make (max n 1) 0 in
  Array.iteri (fun k x -> rank.(x) <- k) default_order;
  { prog; default_order; rank; delay_state; prims;
    tr = Trace.create (Prog.decls prog);
    instants = 0; free = 0;
    pres = Array.make (max n 1) Unknown;
    vals = Array.make (max n 1) None;
    changed = false }

(* ------------------------------------------------------------------ *)
(* Fact tables                                                         *)
(* ------------------------------------------------------------------ *)

let presence st x = st.pres.(x)

let set_presence st x p =
  match st.pres.(x), p with
  | Unknown, (Present | Absent) ->
    st.pres.(x) <- p;
    st.changed <- true
  | Present, Absent | Absent, Present ->
    errf "instant %d: contradictory presence for signal %s" st.instants
      (Prog.name st.prog x)
  | _, _ -> ()

let value_of st x = st.vals.(x)

let set_value st x v =
  match st.vals.(x) with
  | None ->
    st.vals.(x) <- Some v;
    st.changed <- true
  | Some v0 ->
    if not (Types.equal_value v0 v) then
      errf "instant %d: contradictory values for signal %s (%s vs %s)"
        st.instants (Prog.name st.prog x) (Types.value_to_string v0)
        (Types.value_to_string v)

let atom_presence st = function
  | Prog.Avar x -> presence st x
  | Prog.Aconst _ -> Unknown  (* contextual; handled by the group rules *)

let atom_value st = function
  | Prog.Avar x -> value_of st x
  | Prog.Aconst v -> Some v

(* ------------------------------------------------------------------ *)
(* Presence / value propagation rules                                  *)
(* ------------------------------------------------------------------ *)

(* Synchronous group: dst and all Avar args share a clock. *)
let rule_sync_group st dst args =
  let any p =
    presence st dst = p
    || Array.exists
         (function Prog.Avar x -> presence st x = p | Prog.Aconst _ -> false)
         args
  in
  let set p =
    set_presence st dst p;
    Array.iter
      (function Prog.Avar x -> set_presence st x p | Prog.Aconst _ -> ())
      args
  in
  if any Present then set Present else if any Absent then set Absent

let rule_func st dst op args =
  rule_sync_group st dst args;
  if presence st dst = Present then begin
    let arg_vals = Array.map (atom_value st) args in
    if Array.for_all Option.is_some arg_vals then
      set_value st dst
        (Eval.eval_func op (Array.to_list (Array.map Option.get arg_vals)))
  end

let rule_delay st dst src =
  rule_sync_group st dst [| Prog.Avar src |];
  if presence st dst = Present then set_value st dst st.delay_state.(dst)

let rule_when st dst src cond =
  (* a constant condition has the contextual clock: false silences the
     destination, true makes it mirror the source *)
  (match cond with
   | Prog.Aconst v when not (Eval.as_bool v) -> set_presence st dst Absent
   | Prog.Aconst _ -> (
     match src with
     | Prog.Aconst v -> if presence st dst = Present then set_value st dst v
     | Prog.Avar x -> (
       match presence st x, presence st dst with
       | Present, _ ->
         set_presence st dst Present;
         (match value_of st x with
          | Some v -> set_value st dst v
          | None -> ())
       | Absent, _ -> set_presence st dst Absent
       | Unknown, Absent -> set_presence st x Absent
       | Unknown, (Present | Unknown) -> ()))
   | Prog.Avar _ -> ());
  (match atom_presence st cond, atom_value st cond with
   | Absent, _ -> set_presence st dst Absent
   | Present, Some v when not (Eval.as_bool v) -> set_presence st dst Absent
   | Present, Some _ -> (
     (* condition true: dst follows src *)
     match src with
     | Prog.Aconst v ->
       set_presence st dst Present;
       set_value st dst v
     | Prog.Avar x -> (
       match presence st x with
       | Present ->
         set_presence st dst Present;
         (match value_of st x with
          | Some v -> set_value st dst v
          | None -> ())
       | Absent -> set_presence st dst Absent
       | Unknown -> ()))
   | (Present | Unknown), _ -> ());
  (* backward: dst present forces src and cond present (cond true) *)
  if presence st dst = Present then begin
    (match src with
     | Prog.Avar x -> set_presence st x Present
     | Prog.Aconst _ -> ());
    match cond with
    | Prog.Avar b -> set_presence st b Present
    | Prog.Aconst _ -> ()
  end

let rule_default st dst left right =
  let pl = atom_presence st left and pr = atom_presence st right in
  (* union clock: either operand present forces the destination *)
  if pl = Present || pr = Present then set_presence st dst Present;
  (match pl with
   | Present -> (
     match atom_value st left with
     | Some v -> set_value st dst v
     | None -> ())
   | Absent -> (
     match pr with
     | Present -> (
       match atom_value st right with
       | Some v -> set_value st dst v
       | None -> ())
     | Absent -> set_presence st dst Absent
     | Unknown -> ())
   | Unknown -> ());
  (match presence st dst with
   | Absent ->
     (match left with
      | Prog.Avar x -> set_presence st x Absent
      | Prog.Aconst _ -> ());
     (match right with
      | Prog.Avar x -> set_presence st x Absent
      | Prog.Aconst _ -> ())
   | Present -> (
     (* if left absent, right must be present *)
     match pl, right with
     | Absent, Prog.Avar x -> set_presence st x Present
     | Absent, Prog.Aconst v -> set_value st dst v
     | _, _ -> ())
   | Unknown -> ());
  (* constant left: when dst is present and left is a constant, the
     merge yields the constant (a constant is contextually present) *)
  match left, presence st dst with
  | Prog.Aconst v, Present -> set_value st dst v
  | (Prog.Aconst _ | Prog.Avar _), _ -> ()

let rule_constraint st = function
  | Prog.Leq (a, b) -> (
    match presence st a, presence st b with
    | Present, _ -> set_presence st b Present
    | Absent, _ -> set_presence st b Absent
    | Unknown, Present -> set_presence st a Present
    | Unknown, Absent -> set_presence st a Absent
    | Unknown, Unknown -> ())
  | Prog.Lle (a, b) -> (
    (match presence st a with
     | Present -> set_presence st b Present
     | Absent | Unknown -> ());
    match presence st b with
    | Absent -> set_presence st a Absent
    | Present | Unknown -> ())
  | Prog.Lex (a, b) -> (
    (match presence st a with
     | Present -> set_presence st b Absent
     | Absent | Unknown -> ());
    match presence st b with
    | Present -> set_presence st a Absent
    | Absent | Unknown -> ())

(* Primitive presence/value rules; effects are deferred to commit. *)
let rule_prim st ps =
  let lp = ps.lp in
  let ins = lp.Prog.lp_ins and outs = lp.Prog.lp_outs in
  match lp.Prog.lp_ki.K.ki_prim with
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset)
    when Array.length ins >= 2 && Array.length outs = 2 ->
    let push = ins.(0) and pop = ins.(1) in
    let data = outs.(0) and size = outs.(1) in
    let reset = if Array.length ins = 3 then Some ins.(2) else None in
    let reset_pres =
      match reset with Some r -> presence st r | None -> Absent
    in
    (* data: present iff pop present and an item is available; the
       available front accounts for a same-instant reset and push *)
    (match presence st pop with
     | Absent -> set_presence st data Absent
     | Present -> (
       let after_reset_empty =
         match reset_pres with
         | Present -> true
         | Absent -> Queue.is_empty ps.queue
         | Unknown -> false (* undecidable yet; only matters if queue empty *)
       in
       if not after_reset_empty && reset_pres <> Unknown then begin
         set_presence st data Present;
         set_value st data (Queue.peek ps.queue)
       end
       else
         match reset_pres, presence st push with
         | Unknown, _ -> ()
         | _, Present ->
           set_presence st data Present;
           (match value_of st push with
            | Some v -> set_value st data v
            | None -> ())
         | _, Absent ->
           if after_reset_empty then set_presence st data Absent
         | _, Unknown -> ())
     | Unknown -> ());
    (* size: present iff any of push/pop/reset present *)
    let any p = Array.exists (fun x -> presence st x = p) ins in
    if any Present then set_presence st size Present
    else if Array.for_all (fun x -> presence st x = Absent) ins then
      set_presence st size Absent;
    if presence st size = Present
       && Array.for_all (fun x -> presence st x <> Unknown) ins
    then begin
      let n0 = if reset_pres = Present then 0 else Queue.length ps.queue in
      let n1 =
        if presence st push = Present then min (n0 + 1) lp.Prog.lp_capacity
        else n0
      in
      let popped = presence st pop = Present && n1 > 0 in
      set_value st size (Types.Vint (if popped then n1 - 1 else n1))
    end
  | Stdproc.Pin_event_port
    when Array.length ins = 2 && Array.length outs = 2 -> (
    let frozen_time = ins.(1) in
    let frozen = outs.(0) and frozen_count = outs.(1) in
    match presence st frozen_time with
    | Absent ->
      set_presence st frozen Absent;
      set_presence st frozen_count Absent
    | Present ->
      (* freeze happens before same-instant arrivals: decidable from
         state alone *)
      set_presence st frozen_count Present;
      set_value st frozen_count (Types.Vint (Queue.length ps.queue));
      if Queue.is_empty ps.queue then set_presence st frozen Absent
      else begin
        set_presence st frozen Present;
        set_value st frozen (Queue.peek ps.queue)
      end
    | Unknown -> ())
  | Stdproc.Pout_event_port
    when Array.length ins = 2 && Array.length outs = 1 -> (
    let item = ins.(0) and output_time = ins.(1) in
    let sent = outs.(0) in
    match presence st output_time with
    | Absent -> set_presence st sent Absent
    | Present ->
      if not (Queue.is_empty ps.queue) then begin
        set_presence st sent Present;
        set_value st sent (Queue.peek ps.queue)
      end
      else (
        match presence st item with
        | Present ->
          set_presence st sent Present;
          (match value_of st item with
           | Some v -> set_value st sent v
           | None -> ())
        | Absent -> set_presence st sent Absent
        | Unknown -> ())
    | Unknown -> ())
  | Stdproc.Pfifo | Stdproc.Pfifo_reset | Stdproc.Pin_event_port
  | Stdproc.Pout_event_port ->
    errf "primitive instance %s: malformed arity" lp.Prog.lp_ki.K.ki_label

(* ------------------------------------------------------------------ *)
(* Commit phase                                                        *)
(* ------------------------------------------------------------------ *)

let push_bounded ps v =
  if Queue.length ps.queue >= ps.lp.Prog.lp_capacity then begin
    ps.overflows <- ps.overflows + 1;
    match ps.lp.Prog.lp_policy with
    | Prog.Drop_oldest ->
      ignore (Queue.pop ps.queue);
      Queue.push v ps.queue
    | Prog.Drop_newest -> ()
    | Prog.Overflow_error ->
      errf "queue overflow on %s (Overflow_Handling_Protocol => Error)"
        ps.lp.Prog.lp_ki.K.ki_label
  end
  else Queue.push v ps.queue

let commit_prim st ps =
  let lp = ps.lp in
  let ins = lp.Prog.lp_ins in
  let pres x = presence st x = Present in
  let valof x = value_of st x in
  match lp.Prog.lp_ki.K.ki_prim with
  | (Stdproc.Pfifo | Stdproc.Pfifo_reset) when Array.length ins >= 2 ->
    if Array.length ins = 3 && pres ins.(2) then Queue.clear ps.queue;
    if pres ins.(0) then (
      match valof ins.(0) with
      | Some v -> push_bounded ps v
      | None -> ());
    if pres ins.(1) && not (Queue.is_empty ps.queue) then
      ignore (Queue.pop ps.queue)
  | Stdproc.Pin_event_port when Array.length ins = 2 ->
    if pres ins.(1) then begin
      Queue.clear ps.frozen;
      Queue.transfer ps.queue ps.frozen
    end;
    if pres ins.(0) then (
      match valof ins.(0) with
      | Some v -> push_bounded ps v
      | None -> ())
  | Stdproc.Pout_event_port when Array.length ins = 2 ->
    if pres ins.(0) then (
      match valof ins.(0) with
      | Some v -> push_bounded ps v
      | None -> ());
    if pres ins.(1) && not (Queue.is_empty ps.queue) then
      ignore (Queue.pop ps.queue)
  | Stdproc.Pfifo | Stdproc.Pfifo_reset | Stdproc.Pin_event_port
  | Stdproc.Pout_event_port ->
    ()

(* ------------------------------------------------------------------ *)
(* The step                                                            *)
(* ------------------------------------------------------------------ *)

let step st ~stimulus =
  Metrics.time m_step_ns @@ fun () ->
  try
    let prog = st.prog in
    let n = prog.Prog.n in
    Array.fill st.pres 0 (Array.length st.pres) Unknown;
    Array.fill st.vals 0 (Array.length st.vals) None;
    (* inputs *)
    List.iter
      (fun (x, v) ->
        match Prog.index_opt prog x with
        | Some i when prog.Prog.is_input.(i) ->
          set_presence st i Present;
          set_value st i v
        | Some _ | None -> errf "stimulus for non-input signal %s" x)
      stimulus;
    Array.iter
      (fun i -> if presence st i = Unknown then set_presence st i Absent)
      prog.Prog.inputs;
    (* fixpoint *)
    let eqs = prog.Prog.eqs in
    let constraints = prog.Prog.constraints in
    let rec iterate guard =
      if guard = 0 then errf "fixpoint did not converge";
      Metrics.incr m_fixpoint_iters;
      st.changed <- false;
      Array.iter
        (fun eq ->
          match eq with
          | Prog.Lfunc { dst; op; args } -> rule_func st dst op args
          | Prog.Ldelay { dst; src; _ } -> rule_delay st dst src
          | Prog.Lwhen { dst; src; cond } -> rule_when st dst src cond
          | Prog.Ldefault { dst; left; right } ->
            rule_default st dst left right)
        eqs;
      Array.iter (rule_constraint st) constraints;
      Array.iter (rule_prim st) st.prims;
      if st.changed then iterate (guard - 1)
    in
    iterate ((2 * n) + 10);
    (* Default remaining unknowns to absent, one signal at a time:
       each choice is re-propagated before the next so that a signal
       whose presence follows from an earlier default is computed
       rather than defaulted (and cannot contradict later rules).
       Within an instant presence only moves Unknown -> decided, so
       the first-unknown position is monotone and a cursor keeps the
       whole defaulting sweep linear. *)
    let order = st.default_order in
    let cursor = ref 0 in
    (* A signal that is already Present but still value-less is waiting
       on the value of an Unknown-presence operand (e.g. a constant-only
       function feeding a default).  Those operands must be resolved
       before any other free choice: their decision lets the cascade
       COMPUTE downstream presences that a blind sweep would guess — and
       a wrong guess surfaces as a contradiction once the value arrives.
       The compiled evaluator makes the same choice (free clock classes
       are absent, everything else derived). *)
    let value_blocker () =
      let best = ref (-1) in
      let consider = function
        | Prog.Avar x ->
          if st.pres.(x) = Unknown
             && (!best < 0 || st.rank.(x) < st.rank.(!best))
          then best := x
        | Prog.Aconst _ -> ()
      in
      Array.iter
        (fun eq ->
          let dst =
            match eq with
            | Prog.Lfunc { dst; _ } | Prog.Ldelay { dst; _ }
            | Prog.Lwhen { dst; _ } | Prog.Ldefault { dst; _ } -> dst
          in
          if st.pres.(dst) = Present && st.vals.(dst) = None then
            match eq with
            | Prog.Lfunc { args; _ } -> Array.iter consider args
            | Prog.Ldelay _ -> ()
            | Prog.Lwhen { src; cond; _ } ->
              consider src;
              consider cond
            | Prog.Ldefault { left; right; _ } ->
              consider left;
              consider right)
        eqs;
      if !best < 0 then None else Some !best
    in
    let choose x =
      Metrics.incr m_defaults;
      st.free <- st.free + 1;
      st.pres.(x) <- Absent;
      st.changed <- true;
      iterate ((2 * n) + 10)
    in
    let rec default_one () =
      match value_blocker () with
      | Some x ->
        choose x;
        default_one ()
      | None ->
        while
          !cursor < Array.length order
          && presence st order.(!cursor) <> Unknown
        do
          incr cursor
        done;
        if !cursor < Array.length order then begin
          choose order.(!cursor);
          default_one ()
        end
    in
    default_one ();
    (* sanity: every present signal needs a value *)
    let row = ref [] and present = ref [] in
    for i = n - 1 downto 0 do
      if st.pres.(i) = Present then
        match st.vals.(i) with
        | Some v ->
          row := (i, v) :: !row;
          present := (Prog.name prog i, v) :: !present
        | None ->
          errf "instant %d: signal %s present without a value" st.instants
            (Prog.name prog i)
    done;
    (* commit state *)
    let delay_src = prog.Prog.delay_src in
    for i = 0 to n - 1 do
      let src = delay_src.(i) in
      if src >= 0 && st.pres.(src) = Present then
        match st.vals.(src) with
        | Some v -> st.delay_state.(i) <- v
        | None -> ()
    done;
    Array.iter (commit_prim st) st.prims;
    Trace.push_row st.tr (Array.of_list !row);
    st.instants <- st.instants + 1;
    Metrics.incr m_instants;
    Ok !present
  with
  | Sim_error m -> Error m
  | Prog.Lower_error m -> Error m
  | Eval.Eval_error m ->
    Error (Printf.sprintf "instant %d: %s" st.instants m)

let run kp ~stimuli =
  match create kp with
  | exception Prog.Lower_error m -> Error m
  | st ->
    let rec go = function
      | [] -> Ok st.tr
      | stim :: rest -> (
        match step st ~stimulus:stim with
        | Ok _ -> go rest
        | Error m -> Error m)
    in
    go stimuli

let trace st = st.tr
let instant st = st.instants
let free_choices st = st.free

let overflow_count st =
  Array.fold_left (fun acc ps -> acc + ps.overflows) 0 st.prims

let fifo_sizes st =
  Array.to_list
    (Array.map
       (fun ps -> (ps.lp.Prog.lp_ki.K.ki_label, Queue.length ps.queue))
       st.prims)
