(** Clock-directed compilation of kernel SIGNAL processes
    (paper ref [15]: "Compilation of polychronous data flow
    equations").

    Where {!Engine} resolves presence by a per-instant fixpoint, the
    compiler runs the clock calculus once, derives a boolean clock
    function per synchronization class, orders presence and value
    computations topologically, and emits a straight-line execution
    plan. A [step] then:

    + reads input presence from the stimulus;
    + evaluates each class's clock function (free classes take their
      presence from inputs or primitive FIFO state; everything else is
      decided by the BDD);
    + computes values of present signals in dataflow order — no
      iteration, no retraction;
    + commits delays and FIFO state.

    Compilation {e fails} (with a diagnostic) on programs whose
    combined presence/value dependency graph is cyclic — exactly the
    programs the causality analysis flags — so callers can fall back to
    the interpreter. On the translated AADL systems, the compiled step
    and the interpreter produce identical traces (tested). *)

type t

val compile : Signal_lang.Kernel.kprocess -> (t, string) result
(** Compile, or fetch the memoized compilation. The expensive immutable
    part — clock analysis, clock BDDs, the toposorted execution plan —
    is cached on {!Signal_lang.Kernel.digest} and shared between all
    instances of a kernel; each call returns a fresh mutable instance
    (own delay registers, FIFO queues, trace). Instances over one plan
    are independent: stepping one never observes another, and distinct
    domains may each step their own instance concurrently (the shared
    plan is read-only at step time). *)

val compile_uncached : Signal_lang.Kernel.kprocess -> (t, string) result
(** [compile] bypassing the plan memo: always rebuilds. For benches
    that want to measure a cold compilation, and tests. *)

val step :
  t ->
  stimulus:(Signal_lang.Ast.ident * Signal_lang.Types.value) list ->
  ((Signal_lang.Ast.ident * Signal_lang.Types.value) list, string) result
(** Same convention as {!Engine.step}: present inputs with values;
    unlisted inputs are absent. *)

val run :
  Signal_lang.Kernel.kprocess ->
  stimuli:(Signal_lang.Ast.ident * Signal_lang.Types.value) list list ->
  (Trace.t, string) result

val trace : t -> Trace.t
val instant : t -> int

val plan_length : t -> int
(** Number of micro-operations in the execution plan. *)

val free_classes : t -> int
(** Synchronization classes whose presence is neither input-driven,
    nor FIFO-driven, nor derivable from the clock functions — they
    default to absent each instant (0 for endochronous programs). *)

val free_class_members : t -> string list
(** Signals belonging to the free classes, for diagnostics. *)

(** {1 State management}

    Used by {!Explore} to walk the reachable state space: the mutable
    state of a compiled process is its delay memories and FIFO
    contents. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val set_recording : t -> bool -> unit
(** Disable trace recording during exploration (default on). *)

val state_digest : t -> string
(** Canonical byte string of the mutable state (delay memories and
    FIFO contents, excluding the instant counter); equal digests mean
    behaviourally identical continuations. *)

(** {1 C code generation}

    The Polychrony back-end pillar (ref [15]): the execution plan is
    emitted as a self-contained C program. Its [main] reads one line
    per instant from stdin — one token per process input, in interface
    order, ["-"] meaning absent — executes the compiled step and prints
    every present signal as [name=value]. The generated code is
    compiled with a real C compiler and diffed against the OCaml
    simulator in the test suite. *)

val to_c : ?name:string -> t -> (string, string) result
(** Fails on processes with string-typed signals (no C mapping). *)
