(** Clock-directed compilation of kernel SIGNAL processes
    (paper ref [15]: "Compilation of polychronous data flow
    equations").

    Where {!Engine} resolves presence by a per-instant fixpoint, the
    compiler runs the clock calculus once, derives a boolean clock
    function per synchronization class, orders presence and value
    computations topologically, and emits a straight-line execution
    plan compiled to closures over unboxed structure-of-arrays state.
    A step then:

    + reads input presence from the dense stimulus buffer;
    + evaluates each class's clock function (free classes take their
      presence from inputs or primitive FIFO state; everything else is
      decided by a decision tree flattened from the clock BDD);
    + computes values of present signals in dataflow order — no
      iteration, no retraction, no per-value boxing;
    + commits delay registers and FIFO ring buffers.

    The steady-state step loop is allocation-flat: with trace
    recording off, {!run_batched} performs no per-instant heap
    allocation (values live in int/float/string payload arrays indexed
    by signal, tagged per instant).

    Compilation {e fails} (with a diagnostic) on programs whose
    combined presence/value dependency graph is cyclic — exactly the
    programs the causality analysis flags — so callers can fall back to
    the interpreter. On the translated AADL systems, the compiled step
    and the interpreter produce identical traces (tested). *)

type t

val compile : Signal_lang.Kernel.kprocess -> (t, string) result
(** Compile, or fetch the memoized compilation. The expensive immutable
    part — clock analysis, clock BDDs, the toposorted execution plan
    compiled to closures — is cached on {!Signal_lang.Kernel.digest}
    (with a physical-equality fast path for repeated compiles of the
    same in-memory kernel) and shared between all instances of a
    kernel; each call returns a fresh mutable instance (own delay
    registers, FIFO queues, trace). Instances over one plan are
    independent: stepping one never observes another, and distinct
    domains may each step their own instance concurrently (the shared
    plan is read-only at step time). *)

val compile_scenarios :
  Signal_lang.Kernel.kprocess -> scenarios:int -> (t, string) result
(** Like {!compile}, but the instance carries [scenarios] independent
    copies of the mutable state (delay registers, FIFO queues,
    presence bits, stimulus buffer, trace) in scenario-striped
    structure-of-arrays layout, all driven in lockstep by
    {!step_many} over the one shared plan. [scenarios] must be
    [>= 1]. *)

val compile_uncached : Signal_lang.Kernel.kprocess -> (t, string) result
(** [compile] bypassing the plan memo: always rebuilds. For benches
    that want to measure a cold compilation, and tests. *)

val fork : t -> t
(** A fresh instance (initial state, empty traces, same scenario
    count) over the same already-built plan. Never fails: no
    re-compilation happens. *)

val scenarios : t -> int
(** Number of lockstep scenarios carried by this instance (1 unless
    built by {!compile_scenarios}). *)

(** {1 Dense stimulus ABI}

    The zero-allocation convention: inputs are addressed by their
    dense signal index and written into a preallocated stimulus
    buffer; outputs are read back from the instance without
    materializing lists. One instant is:

    {[ Compile.stim_clear c;
       Compile.set_stim c i v;          (* per present input *)
       Compile.step_prepared c;
       Compile.iter_present c (fun i v -> ...) ]} *)

val n_signals : t -> int

val signal_index : t -> Signal_lang.Ast.ident -> int option
(** Dense index of a signal name (inputs and outputs alike). *)

val signal_name : t -> int -> Signal_lang.Ast.ident

val is_input : t -> int -> bool
(** Whether dense index [i] names an input signal (stimulus target). *)

val stim_clear : t -> unit
(** Reset the stimulus buffer of the selected scenario: every input
    becomes absent for the next instant. *)

val set_stim : t -> int -> Signal_lang.Types.value -> unit
(** Mark input [i] present with the given value for the next instant.
    Raising paths (non-input or out-of-range index) surface as the
    [Error] of the enclosing {!step_prepared}/{!run_batched} call. *)

val step_prepared : t -> (unit, string) result
(** Execute one instant from the current stimulus buffer. Read results
    back with {!out_present}/{!out_value}/{!iter_present}. *)

val out_present : t -> int -> bool
(** Whether signal [i] was present at the last executed instant. *)

val out_value : t -> int -> Signal_lang.Types.value option
(** Value of signal [i] at the last executed instant, if present. *)

val iter_present : t -> (int -> Signal_lang.Types.value -> unit) -> unit
(** Iterate present signals of the last executed instant in ascending
    index order. *)

val present_assoc :
  t -> (Signal_lang.Ast.ident * Signal_lang.Types.value) list
(** Present signals of the last executed instant as a name/value assoc
    list (ascending index order), for dense ABI callers that still
    need the boxed view (e.g. safety predicates). *)

(** {1 Stepping} *)

val run_batched : t -> n:int -> fill:(t -> int -> unit) -> (unit, string) result
(** Execute [n] instants in one call over scenario 0, with plan and
    metrics lookups hoisted out of the loop and no intermediate lists.
    [fill c k] must set the stimulus for relative instant [k] via
    {!set_stim} (the buffer is cleared before each call). With
    recording off the loop does not allocate per instant. *)

val step_many : t -> fill:(t -> int -> unit) -> (unit, string) result
(** Advance {e every} scenario of the instance by one instant, in
    lockstep over the shared plan. [fill c s] sets scenario [s]'s
    stimulus via {!set_stim}. Per-scenario results land in
    {!trace_of}; each scenario behaves exactly as an independent
    instance driven with the same stimuli (tested). *)

val run :
  Signal_lang.Kernel.kprocess ->
  stimuli:(Signal_lang.Ast.ident * Signal_lang.Types.value) list list ->
  (Trace.t, string) result

val trace : t -> Trace.t
(** Trace of scenario 0. *)

val trace_of : t -> int -> Trace.t
(** Trace of scenario [s]. *)

val instant : t -> int

val plan_length : t -> int
(** Number of micro-operations in the execution plan. *)

val free_classes : t -> int
(** Synchronization classes whose presence is neither input-driven,
    nor FIFO-driven, nor derivable from the clock functions — they
    default to absent each instant (0 for endochronous programs). *)

val free_class_members : t -> string list
(** Signals belonging to the free classes, for diagnostics. *)

(** {1 State management}

    Used by {!Explore} to walk the reachable state space: the mutable
    state of a compiled process is its delay memories and FIFO
    contents. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val set_recording : t -> bool -> unit
(** Disable trace recording during exploration (default on). *)

val state_digest : t -> string
(** Canonical byte string of the mutable state (delay memories and
    FIFO contents, excluding the instant counter); equal digests mean
    behaviourally identical continuations. *)

type keybuf
(** Reusable serialization buffer for {!state_key}; one per worker. *)

val keybuf : unit -> keybuf

val state_key : t -> keybuf -> string
(** Fixed-width (16-byte MD5) key of the same state {!state_digest}
    covers, serialized through the reused [keybuf] — the visited-set
    key of the explicit explorer. Per call it allocates only the
    digest string (plus one box per float-typed register), not a
    Marshal image of the boxed state. *)

(** {1 Symbolic introspection}

    A read-only view of the compiled plan for the symbolic
    reachability engine ({!Symbolic}): how each synchronization
    class's presence is decided, the clock functions as BDDs over the
    clock calculus's manager, and the topological op order, so the
    engine can rebuild the exact step semantics as boolean formulas. *)

type sym_pdef =
  | Sym_free                       (** statically absent *)
  | Sym_input of int list          (** presence = stimulus of members *)
  | Sym_prim of int * int          (** decided by FIFO state (prim, pos) *)
  | Sym_derived                    (** evaluate the clock function *)
  | Sym_alias of int
      (** mirror class [c]'s presence: the calculus solved an
          observable class's clock as exactly this class's free
          presence variable, so that observation decides it *)

type sym_varres =
  | Sym_present of int             (** clock var = class [c] present *)
  | Sym_cond of int                (** boolean signal [i] present-and-true *)
  | Sym_condeq of int * int        (** integer signal [i] equals [k] *)
  | Sym_none

type sym_view = {
  sv_prog : Prog.t;
  sv_nclasses : int;
  sv_class_of : int array;         (** signal -> synchronization class *)
  sv_pdefs : sym_pdef array;       (** per class *)
  sv_mgr : Clocks.Bdd.manager;     (** manager owning [sv_clock_bdd] *)
  sv_clock_bdd : Clocks.Bdd.t array;  (** per class *)
  sv_bddvars : sym_varres array;   (** clock BDD variable -> resolution *)
  sv_order : [ `Pres of int | `Val of int ] array;
      (** the toposorted schedule: presence of class / value of signal *)
}

val sym_view : t -> sym_view

(** {1 C code generation}

    The Polychrony back-end pillar (ref [15]): the execution plan is
    emitted as a self-contained C program. Its [main] reads one line
    per instant from stdin — one token per process input, in interface
    order, ["-"] meaning absent — executes the compiled step and prints
    every present signal as [name=value]. The generated code is
    compiled with a real C compiler and diffed against the OCaml
    simulator in the test suite. *)

val to_c : ?name:string -> t -> (string, string) result
(** Fails on processes with string-typed signals (no C mapping). *)
