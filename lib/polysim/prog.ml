(* The int-indexed program IR shared by the fixpoint interpreter
   (Engine) and the clock-directed compiler (Compile).

   One lowering pass resolves every signal name of a kernel process to
   a dense index (Kernel.sigtab), rewrites equations, constraints and
   primitive instances over those indices, and derives the per-signal
   value definitions the compiled evaluator executes. Both evaluators
   consume this structure, so they cannot diverge on name resolution,
   primitive arity or queue-policy parsing. *)

module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc

exception Lower_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Lower_error m)) fmt

type atom =
  | Avar of int
  | Aconst of Types.value

type leq =
  | Lfunc of { dst : int; op : K.prim; args : atom array }
  | Ldelay of { dst : int; src : int; init : Types.value }
  | Lwhen of { dst : int; src : atom; cond : atom }
  | Ldefault of { dst : int; left : atom; right : atom }

type lconstraint =
  | Leq of int * int
  | Lle of int * int
  | Lex of int * int

type overflow_policy = Drop_oldest | Drop_newest | Overflow_error

type lprim = {
  lp_ki : K.kinstance;
  lp_ins : int array;
  lp_outs : int array;
  lp_capacity : int;
  lp_policy : overflow_policy;
}

(* how a signal's value is produced, for the plan-driven evaluator *)
type vdef =
  | Vnone                          (* input: value comes from the stimulus *)
  | Vfunc of K.prim * atom array
  | Vdelay                         (* read the delay state *)
  | Vwhen of atom                  (* value of the source when present *)
  | Vdefault of atom * atom
  | Vprim of int * int             (* primitive index, output position *)

type t = {
  kp : K.kprocess;
  tab : K.sigtab;
  n : int;
  names : string array;            (* local idx -> name *)
  types : Types.styp array;
  is_input : bool array;
  inputs : int array;              (* input indices, interface order *)
  eqs : leq array;
  constraints : lconstraint array;
  prims : lprim array;
  vdefs : vdef array;
  delay_src : int array;           (* per signal: src idx of its delay, -1 *)
  delay_init : Types.value array;  (* per delay destination; Vint 0 elsewhere *)
}

let capacity_of ki =
  match ki.K.ki_params with
  | Types.Vint n :: _ when n > 0 -> n
  | _ -> 16

let policy_of ki =
  match ki.K.ki_params with
  | [ _; Types.Vstring s ] -> (
    match String.lowercase_ascii s with
    | "dropnewest" -> Drop_newest
    | "error" -> Overflow_error
    | _ -> Drop_oldest)
  | _ -> Drop_oldest

let of_kprocess kp =
  let tab = K.sigtab kp in
  let n = K.st_count tab in
  let index x =
    match K.st_index_opt tab x with
    | Some i -> i
    | None -> errf "undeclared signal %s" x
  in
  let names = Array.init n (K.st_name tab) in
  let types = Array.init n (fun i -> (K.st_decl tab i).Ast.var_type) in
  let is_input = Array.make n false in
  List.iter (fun vd -> is_input.(index vd.Ast.var_name) <- true) kp.K.kinputs;
  let inputs =
    Array.of_list (List.map (fun vd -> index vd.Ast.var_name) kp.K.kinputs)
  in
  let atom = function
    | K.Avar x -> Avar (index x)
    | K.Aconst v -> Aconst v
  in
  let eqs =
    Array.of_list
      (List.map
         (fun eq ->
           match eq with
           | K.Kfunc { dst; op; args } ->
             Lfunc
               { dst = index dst; op; args = Array.of_list (List.map atom args) }
           | K.Kdelay { dst; src; init } ->
             Ldelay { dst = index dst; src = index src; init }
           | K.Kwhen { dst; src; cond } ->
             Lwhen { dst = index dst; src = atom src; cond = atom cond }
           | K.Kdefault { dst; left; right } ->
             Ldefault { dst = index dst; left = atom left; right = atom right })
         kp.K.keqs)
  in
  let constraints =
    Array.of_list
      (List.map
         (function
           | K.Ceq (a, b) -> Leq (index a, index b)
           | K.Cle (a, b) -> Lle (index a, index b)
           | K.Cex (a, b) -> Lex (index a, index b))
         kp.K.kconstraints)
  in
  let prims =
    Array.of_list
      (List.map
         (fun ki ->
           { lp_ki = ki;
             lp_ins = Array.of_list (List.map index ki.K.ki_ins);
             lp_outs = Array.of_list (List.map index ki.K.ki_outs);
             lp_capacity = capacity_of ki;
             lp_policy = policy_of ki })
         kp.K.kinstances)
  in
  let vdefs = Array.make (max n 1) Vnone in
  let delay_src = Array.make (max n 1) (-1) in
  let delay_init = Array.make (max n 1) (Types.Vint 0) in
  Array.iter
    (fun eq ->
      match eq with
      | Lfunc { dst; op; args } -> vdefs.(dst) <- Vfunc (op, args)
      | Ldelay { dst; src; init } ->
        vdefs.(dst) <- Vdelay;
        delay_src.(dst) <- src;
        delay_init.(dst) <- init
      | Lwhen { dst; src; _ } -> vdefs.(dst) <- Vwhen src
      | Ldefault { dst; left; right } -> vdefs.(dst) <- Vdefault (left, right))
    eqs;
  Array.iteri
    (fun pi p ->
      Array.iteri (fun pos out -> vdefs.(out) <- Vprim (pi, pos)) p.lp_outs)
    prims;
  { kp; tab; n; names; types; is_input; inputs; eqs; constraints; prims;
    vdefs; delay_src; delay_init }

let index_opt prog x = K.st_index_opt prog.tab x
let name prog i = prog.names.(i)
let decls prog = K.signals prog.kp
