(** Value Change Dump output of simulation traces (paper ref [18]:
    co-simulation demonstrated with the VCD technique).

    Signals are rendered as VCD wires: events and booleans as 1-bit
    wires (an event pulses to 1 for its instant), integers as 32-bit
    vectors, reals as [real] variables. Absence is encoded as [x]
    (unknown) on the wire — [rx] for reals, [sx] for strings — which
    makes present/absent visually distinct in any VCD viewer. One
    logical instant = one timescale unit.

    String values are percent-encoded (whitespace, ['%'], control
    characters, and the literal value ["x"]) so arbitrary strings
    survive the space-delimited change format; {!Vcd_reader} decodes
    them. Declared names are sanitized for VCD identifiers and
    uniquified ([name__2], …) when two signals sanitize alike. *)

val to_string :
  ?signals:Signal_lang.Ast.ident list ->
  ?module_name:string ->
  ?timescale:string ->
  ?instant_us:int ->
  Trace.t -> string
(** Render the trace. Defaults: observable signals, module ["top"],
    timescale ["1 ms"]. [instant_us] gives the real duration of one
    logical instant in microseconds (the schedule's base tick): the
    dump then declares [$timescale 1 us] (arbitrary multipliers are
    not legal VCD) and multiplies every timestamp by [instant_us], so
    viewer cursors read actual model time. It overrides [timescale].
    @raise Invalid_argument when [instant_us <= 0]. *)

val to_file :
  ?signals:Signal_lang.Ast.ident list ->
  ?module_name:string ->
  ?timescale:string ->
  ?instant_us:int ->
  string -> Trace.t -> unit
(** Write to the given path. *)
