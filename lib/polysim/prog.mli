(** The int-indexed program IR shared by {!Engine} and {!Compile}.

    One lowering pass ({!of_kprocess}) interns every signal of a
    kernel process into a dense index and rewrites equations,
    constraints and primitive instances over those indices. The
    fixpoint interpreter consumes [eqs]/[constraints]/[prims]; the
    clock-directed compiler consumes the derived per-signal [vdefs]
    and the same [prims] — both evaluators therefore share name
    resolution, primitive arity checking and queue-policy parsing,
    and their per-instant state is flat arrays. *)

exception Lower_error of string

type atom =
  | Avar of int
  | Aconst of Signal_lang.Types.value

type leq =
  | Lfunc of { dst : int; op : Signal_lang.Kernel.prim; args : atom array }
  | Ldelay of { dst : int; src : int; init : Signal_lang.Types.value }
  | Lwhen of { dst : int; src : atom; cond : atom }
  | Ldefault of { dst : int; left : atom; right : atom }

type lconstraint =
  | Leq of int * int
  | Lle of int * int
  | Lex of int * int

type overflow_policy = Drop_oldest | Drop_newest | Overflow_error

type lprim = {
  lp_ki : Signal_lang.Kernel.kinstance;
  lp_ins : int array;
  lp_outs : int array;
  lp_capacity : int;
  lp_policy : overflow_policy;
}

type vdef =
  | Vnone
  | Vfunc of Signal_lang.Kernel.prim * atom array
  | Vdelay
  | Vwhen of atom
  | Vdefault of atom * atom
  | Vprim of int * int

type t = {
  kp : Signal_lang.Kernel.kprocess;
  tab : Signal_lang.Kernel.sigtab;
  n : int;
  names : string array;
  types : Signal_lang.Types.styp array;
  is_input : bool array;
  inputs : int array;
  eqs : leq array;
  constraints : lconstraint array;
  prims : lprim array;
  vdefs : vdef array;
  delay_src : int array;
  delay_init : Signal_lang.Types.value array;
}

val of_kprocess : Signal_lang.Kernel.kprocess -> t
(** @raise Lower_error on references to undeclared signals. *)

val index_opt : t -> Signal_lang.Ast.ident -> int option
val name : t -> int -> Signal_lang.Ast.ident
val decls : t -> Signal_lang.Ast.nvardecl list
