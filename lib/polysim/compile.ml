module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc
module Calc = Clocks.Calculus
module Bdd = Clocks.Bdd
module Metrics = Putil.Metrics
module Clock = Putil.Clock

let m_compilations = Metrics.counter "compile.compilations"
let m_plan_builds = Metrics.counter "compile.plan_builds"
let m_cache_hits = Metrics.counter "pipeline.cache_hits"
let m_cache_misses = Metrics.counter "pipeline.cache_misses"
let m_compile_ns = Metrics.timer "compile.compile_ns"
let m_plan_ops = Metrics.gauge "compile.plan_ops"
let m_bdd_nodes = Metrics.gauge "compile.bdd_nodes"
let m_bdd_apply_calls = Metrics.gauge "compile.bdd_apply_calls"
let m_bdd_apply_hit_pct = Metrics.gauge "compile.bdd_apply_hit_pct"
let m_free_classes = Metrics.gauge "compile.free_classes"
let m_instants = Metrics.counter "compile.instants"
let m_step_ns = Metrics.timer "compile.step_ns"
let m_codegen_bytes = Metrics.gauge "compile.codegen_bytes"

exception Comp_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Comp_error m)) fmt

(* how a class's presence is decided *)
type pdef =
  | Pinput of int list             (* input signal indices in the class *)
  | Pprim of int * int             (* primitive index, output position *)
  | Pderived                       (* evaluate the clock function *)
  | Palias of int                  (* mirror another class's presence *)
  | Pfree                          (* default to absent *)

type op =
  | Opres of int
  | Oval of int

(* BDD variable, resolved at compile time so the per-instant clock
   evaluation is pure array indexing *)
type varres =
  | Rpresent of int                (* class id *)
  | Rcond of int                   (* boolean signal index *)
  | Rcondeq of int * int           (* integer signal index, constant *)
  | Rnone

(* Clock functions are flattened to decision trees at plan time so the
   per-instant evaluation is a branch walk with no manager access and
   no environment closure. Pathologically large functions fall back to
   shared-BDD evaluation. *)
type ctree =
  | Cleaf of bool
  | Cnode of varres * ctree * ctree   (* if var then hi else lo *)
  | Cbdd of Bdd.t

(* Values live unboxed in structure-of-arrays slots: a small tag plus
   one payload cell per representation kind. Booleans and events share
   the int payload. *)
let tg_int = 0
let tg_bool = 1
let tg_event = 2
let tg_real = 3
let tg_string = 4

(* compiled atoms: constants are pre-split by representation *)
type catom =
  | CAvar of int
  | CAconst_i of int * int             (* tag (int/bool/event), payload *)
  | CAconst_r of float
  | CAconst_s of string

(* FIFO state as unboxed ring buffers, one stripe of [cap] cells per
   scenario (mirroring the ring layout the C backend emits) *)
type prim_st = {
  lp : Prog.lprim;
  cap : int;                       (* ring capacity, >= 1 *)
  q_ri : int array;                (* nscen * cap payload cells *)
  q_rr : float array;
  q_rs : string array;
  q_tg : int array;
  q_len : int array;               (* per scenario *)
  q_head : int array;              (* per scenario *)
  overflows : int array;           (* per scenario *)
}

(* The compiler is split in two: an immutable [plan] — everything that
   depends only on the kernel (lowered IR, clock analysis, presence
   definitions, decision-tree clock functions, the topologically
   sorted op schedule compiled to closures) — and a mutable instance
   [t] holding per-run state. Instance state is striped: scenario [s]
   of a [K]-scenario instance owns slots [s*n .. s*n+n-1] of every
   per-signal array (and [s*nclasses ..] of the presence array), and
   the compiled code addresses state only through [base_sig]/[base_cls],
   so one shared plan drives any number of scenarios in lockstep.
   Plans are memoized on the kernel's structural digest and shared
   freely, including across domains: stepping an instance only reads
   the plan, so each worker of the parallel explorer instantiates its
   own [t] over the one shared plan. *)
type plan = {
  p_prog : Prog.t;                 (* shared lowered IR (same as Engine) *)
  p_calc : Calc.t;
  p_class_of : int array;
  p_nclasses : int;
  p_pdefs : pdef array;
  p_clock_bdd : Bdd.t array;       (* per class (kept for the C backend) *)
  p_bddvars : varres array;        (* bdd variable -> resolution *)
  p_plan : op array;
  p_ops : (t -> unit) array;       (* the schedule, compiled to closures *)
  p_n_free : int;                  (* statically free classes *)
  p_decls : Ast.nvardecl list;     (* cached for cheap instantiation *)
}

and t = {
  pl : plan;
  (* plan fields, aliased for direct access on the hot path *)
  prog : Prog.t;
  calc : Calc.t;
  class_of : int array;
  nclasses : int;
  pdefs : pdef array;
  clock_bdd : Bdd.t array;
  bddvars : varres array;
  plan : op array;
  ops : (t -> unit) array;
  n_free : int;
  (* instance-owned state *)
  n : int;                         (* signal count *)
  nscen : int;                     (* scenarios sharing this instance *)
  mutable scen : int;              (* currently selected scenario *)
  mutable base_sig : int;          (* = scen * n *)
  mutable base_cls : int;          (* = scen * nclasses *)
  (* per-instant SoA slots, scenario-striped *)
  ri : int array;
  rr : float array;
  rs : string array;
  tg : int array;
  has : bool array;                (* slot holds a value this instant *)
  stim_p : bool array;             (* input stimulated this instant *)
  pres : bool array;               (* per class, scenario-striped *)
  (* delay registers, scenario-striped, same slot layout *)
  di : int array;
  dr : float array;
  ds : string array;
  dtg : int array;
  prims : prim_st array;
  traces : Trace.t array;          (* one per scenario *)
  mutable instants : int;
  mutable recording : bool;
}

(* ------------------------------------------------------------------ *)
(* Unboxed slot operations                                             *)
(* ------------------------------------------------------------------ *)

let everrf st fmt =
  Format.kasprintf
    (fun m -> raise (Comp_error (Printf.sprintf "instant %d: %s" st.instants m)))
    fmt

let slot_value st j =
  match st.tg.(j) with
  | 0 -> Types.Vint st.ri.(j)
  | 1 -> if st.ri.(j) <> 0 then Types.Vbool true else Types.Vbool false
  | 2 -> Types.Vevent
  | 3 -> Types.Vreal st.rr.(j)
  | _ -> Types.Vstring st.rs.(j)

let set_slot_value st j v =
  (match v with
   | Types.Vint n -> st.tg.(j) <- tg_int; st.ri.(j) <- n
   | Types.Vbool b -> st.tg.(j) <- tg_bool; st.ri.(j) <- (if b then 1 else 0)
   | Types.Vevent -> st.tg.(j) <- tg_event; st.ri.(j) <- 1
   | Types.Vreal r -> st.tg.(j) <- tg_real; st.rr.(j) <- r
   | Types.Vstring s -> st.tg.(j) <- tg_string; st.rs.(j) <- s);
  st.has.(j) <- true

let set_i st j n = st.tg.(j) <- tg_int; st.ri.(j) <- n; st.has.(j) <- true
let set_b st j b =
  st.tg.(j) <- tg_bool; st.ri.(j) <- (if b then 1 else 0); st.has.(j) <- true
let set_e st j = st.tg.(j) <- tg_event; st.ri.(j) <- 1; st.has.(j) <- true
let set_r st j r = st.tg.(j) <- tg_real; st.rr.(j) <- r; st.has.(j) <- true

let copy_sig st dst src =
  let t = st.tg.(src) in
  st.tg.(dst) <- t;
  (match t with
   | 3 -> st.rr.(dst) <- st.rr.(src)
   | 4 -> st.rs.(dst) <- st.rs.(src)
   | _ -> st.ri.(dst) <- st.ri.(src));
  st.has.(dst) <- true

(* delay register <-> value slot (same index layout) *)
let copy_delay_to_sig st j =
  let t = st.dtg.(j) in
  st.tg.(j) <- t;
  (match t with
   | 3 -> st.rr.(j) <- st.dr.(j)
   | 4 -> st.rs.(j) <- st.ds.(j)
   | _ -> st.ri.(j) <- st.di.(j));
  st.has.(j) <- true

let copy_sig_to_delay st src dst =
  let t = st.tg.(src) in
  st.dtg.(dst) <- t;
  match t with
  | 3 -> st.dr.(dst) <- st.rr.(src)
  | 4 -> st.ds.(dst) <- st.rs.(src)
  | _ -> st.di.(dst) <- st.ri.(src)

let delay_boxed st j =
  match st.dtg.(j) with
  | 0 -> Types.Vint st.di.(j)
  | 1 -> if st.di.(j) <> 0 then Types.Vbool true else Types.Vbool false
  | 2 -> Types.Vevent
  | 3 -> Types.Vreal st.dr.(j)
  | _ -> Types.Vstring st.ds.(j)

let set_delay_slot st j v =
  match v with
  | Types.Vint n -> st.dtg.(j) <- tg_int; st.di.(j) <- n
  | Types.Vbool b -> st.dtg.(j) <- tg_bool; st.di.(j) <- (if b then 1 else 0)
  | Types.Vevent -> st.dtg.(j) <- tg_event; st.di.(j) <- 1
  | Types.Vreal r -> st.dtg.(j) <- tg_real; st.dr.(j) <- r
  | Types.Vstring s -> st.dtg.(j) <- tg_string; st.ds.(j) <- s

let slot_bool st j =
  match st.tg.(j) with
  | 1 -> st.ri.(j) <> 0
  | 2 -> true
  | _ ->
    everrf st "boolean operation on %s"
      (Types.value_to_string (slot_value st j))

(* ------------------------------------------------------------------ *)
(* Compiled atoms                                                      *)
(* ------------------------------------------------------------------ *)

let atom_check st = function
  | CAvar y ->
    if not st.has.(st.base_sig + y) then
      errf "instant %d: signal %s used before being computed"
        st.instants st.prog.Prog.names.(y)
  | CAconst_i _ | CAconst_r _ | CAconst_s _ -> ()

let atom_tag st = function
  | CAvar y -> st.tg.(st.base_sig + y)
  | CAconst_i (t, _) -> t
  | CAconst_r _ -> tg_real
  | CAconst_s _ -> tg_string

let atom_i st = function
  | CAvar y -> st.ri.(st.base_sig + y)
  | CAconst_i (_, n) -> n
  | CAconst_r _ | CAconst_s _ -> 0

let atom_r st = function
  | CAvar y -> st.rr.(st.base_sig + y)
  | CAconst_r r -> r
  | CAconst_i _ | CAconst_s _ -> 0.

let atom_s st = function
  | CAvar y -> st.rs.(st.base_sig + y)
  | CAconst_s s -> s
  | CAconst_i _ | CAconst_r _ -> ""

let atom_boxed st = function
  | CAvar y -> slot_value st (st.base_sig + y)
  | CAconst_i (t, n) ->
    if t = tg_int then Types.Vint n
    else if t = tg_bool then (if n <> 0 then Types.Vbool true else Types.Vbool false)
    else Types.Vevent
  | CAconst_r r -> Types.Vreal r
  | CAconst_s s -> Types.Vstring s

let atom_bool st a =
  match atom_tag st a with
  | 1 -> atom_i st a <> 0
  | 2 -> true
  | _ ->
    everrf st "boolean operation on %s" (Types.value_to_string (atom_boxed st a))

let copy_atom st dst a =
  match a with
  | CAvar y -> copy_sig st dst (st.base_sig + y)
  | CAconst_i (t, n) -> st.tg.(dst) <- t; st.ri.(dst) <- n; st.has.(dst) <- true
  | CAconst_r r -> set_r st dst r
  | CAconst_s s -> st.tg.(dst) <- tg_string; st.rs.(dst) <- s; st.has.(dst) <- true

(* mirrors Types.equal_value, including the event/bool cross case *)
let atom_equal st a b =
  let ta = atom_tag st a and tb = atom_tag st b in
  if ta = tg_event then
    (if tb = tg_event then true
     else if tb = tg_bool then atom_i st b <> 0
     else false)
  else if tb = tg_event then (if ta = tg_bool then atom_i st a <> 0 else false)
  else if ta <> tb then false
  else
    match ta with
    | 0 | 1 -> atom_i st a = atom_i st b
    | 3 -> atom_r st a = atom_r st b
    | _ -> String.equal (atom_s st a) (atom_s st b)

(* mirrors Eval.compare_num *)
let atom_cmp st a b =
  match atom_tag st a, atom_tag st b with
  | 0, 0 -> Int.compare (atom_i st a) (atom_i st b)
  | 3, 3 -> Float.compare (atom_r st a) (atom_r st b)
  | 4, 4 -> String.compare (atom_s st a) (atom_s st b)
  | _, _ ->
    everrf st "comparison of %s and %s"
      (Types.value_to_string (atom_boxed st a))
      (Types.value_to_string (atom_boxed st b))

(* mirrors Eval.eval_binop over unboxed slots (same error messages,
   same short-circuiting) *)
let exec_binop st dst bop a b =
  match bop with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
    match atom_tag st a, atom_tag st b with
    | 0, 0 ->
      let x = atom_i st a and y = atom_i st b in
      set_i st dst
        (match bop with
         | Ast.Add -> x + y
         | Ast.Sub -> x - y
         | Ast.Mul -> x * y
         | Ast.Div ->
           if y = 0 then everrf st "division by zero" else x / y
         | _ -> if y = 0 then everrf st "modulo by zero" else x mod y)
    | 3, 3 when bop <> Ast.Mod ->
      let x = atom_r st a and y = atom_r st b in
      set_r st dst
        (match bop with
         | Ast.Add -> x +. y
         | Ast.Sub -> x -. y
         | Ast.Mul -> x *. y
         | _ -> x /. y)
    | _, _ ->
      everrf st "arithmetic on %s and %s"
        (Types.value_to_string (atom_boxed st a))
        (Types.value_to_string (atom_boxed st b)))
  | Ast.And ->
    set_b st dst (if atom_bool st a then atom_bool st b else false)
  | Ast.Or -> set_b st dst (if atom_bool st a then true else atom_bool st b)
  | Ast.Xor -> set_b st dst (atom_bool st a <> atom_bool st b)
  | Ast.Eq -> set_b st dst (atom_equal st a b)
  | Ast.Neq -> set_b st dst (not (atom_equal st a b))
  | Ast.Lt -> set_b st dst (atom_cmp st a b < 0)
  | Ast.Le -> set_b st dst (atom_cmp st a b <= 0)
  | Ast.Gt -> set_b st dst (atom_cmp st a b > 0)
  | Ast.Ge -> set_b st dst (atom_cmp st a b >= 0)

let rec check_args_then_malformed st cargs k =
  if k < Array.length cargs then begin
    atom_check st cargs.(k);
    check_args_then_malformed st cargs (k + 1)
  end
  else everrf st "malformed kernel function application"

(* ------------------------------------------------------------------ *)
(* Clock evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let bdd_env st v =
  if v >= Array.length st.bddvars then false
  else
    match st.bddvars.(v) with
    | Rpresent c -> st.pres.(st.base_cls + c)
    | Rcond bi ->
      let j = st.base_sig + bi in
      st.pres.(st.base_cls + st.class_of.(bi))
      && st.has.(j) && slot_bool st j
    | Rcondeq (xi, k) ->
      let j = st.base_sig + xi in
      st.pres.(st.base_cls + st.class_of.(xi))
      && st.has.(j) && st.tg.(j) = tg_int && st.ri.(j) = k
    | Rnone -> false

let rec ceval st = function
  | Cleaf b -> b
  | Cnode (r, hi, lo) ->
    let v =
      match r with
      | Rpresent c -> st.pres.(st.base_cls + c)
      | Rcond bi ->
        let j = st.base_sig + bi in
        st.pres.(st.base_cls + st.class_of.(bi))
        && st.has.(j) && slot_bool st j
      | Rcondeq (xi, k) ->
        let j = st.base_sig + xi in
        st.pres.(st.base_cls + st.class_of.(xi))
        && st.has.(j) && st.tg.(j) = tg_int && st.ri.(j) = k
      | Rnone -> false
    in
    if v then ceval st hi else ceval st lo
  | Cbdd b -> Bdd.eval (Calc.manager st.calc) (bdd_env st) b

(* ------------------------------------------------------------------ *)
(* FIFO ring buffers                                                   *)
(* ------------------------------------------------------------------ *)

let copy_queue_head st p dst =
  let s = st.scen in
  let idx = (s * p.cap) + p.q_head.(s) in
  let t = p.q_tg.(idx) in
  st.tg.(dst) <- t;
  (match t with
   | 3 -> st.rr.(dst) <- p.q_rr.(idx)
   | 4 -> st.rs.(dst) <- p.q_rs.(idx)
   | _ -> st.ri.(dst) <- p.q_ri.(idx));
  st.has.(dst) <- true

let qclear p s =
  p.q_len.(s) <- 0;
  p.q_head.(s) <- 0

let qpop p s =
  if p.q_len.(s) > 0 then begin
    p.q_head.(s) <- (p.q_head.(s) + 1) mod p.cap;
    p.q_len.(s) <- p.q_len.(s) - 1
  end

let qwrite_tail st p src =
  let s = st.scen in
  let idx = (s * p.cap) + ((p.q_head.(s) + p.q_len.(s)) mod p.cap) in
  let t = st.tg.(src) in
  p.q_tg.(idx) <- t;
  (match t with
   | 3 -> p.q_rr.(idx) <- st.rr.(src)
   | 4 -> p.q_rs.(idx) <- st.rs.(src)
   | _ -> p.q_ri.(idx) <- st.ri.(src));
  p.q_len.(s) <- p.q_len.(s) + 1

let qpush_bounded st p src =
  let s = st.scen in
  if p.q_len.(s) >= p.cap then begin
    p.overflows.(s) <- p.overflows.(s) + 1;
    match p.lp.Prog.lp_policy with
    | Prog.Drop_oldest ->
      qpop p s;
      qwrite_tail st p src
    | Prog.Drop_newest -> ()
    | Prog.Overflow_error ->
      errf "queue overflow on %s (Overflow_Handling_Protocol => Error)"
        p.lp.Prog.lp_ki.K.ki_label
  end
  else qwrite_tail st p src

let commit_prim st p =
  let s = st.scen in
  let ins = p.lp.Prog.lp_ins in
  match p.lp.Prog.lp_ki.K.ki_prim with
  | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
    if Array.length ins = 3
       && st.pres.(st.base_cls + st.class_of.(ins.(2)))
    then qclear p s;
    if st.pres.(st.base_cls + st.class_of.(ins.(0))) then
      qpush_bounded st p (st.base_sig + ins.(0));
    if st.pres.(st.base_cls + st.class_of.(ins.(1))) then qpop p s
  | Stdproc.Pin_event_port ->
    if st.pres.(st.base_cls + st.class_of.(ins.(1))) then qclear p s;
    (* NOTE: the engine moves in_fifo to frozen_fifo; since [frozen]
       only ever exposes the head at Frozen_time, dropping the old
       frozen content and re-freezing is equivalent observably; the
       in_fifo is cleared after a freeze, matching Engine.commit. *)
    if st.pres.(st.base_cls + st.class_of.(ins.(0))) then
      qpush_bounded st p (st.base_sig + ins.(0))
  | Stdproc.Pout_event_port ->
    if st.pres.(st.base_cls + st.class_of.(ins.(0))) then
      qpush_bounded st p (st.base_sig + ins.(0));
    if st.pres.(st.base_cls + st.class_of.(ins.(1))) then qpop p s

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec stim_any st ms k =
  k < Array.length ms
  && (st.stim_p.(st.base_sig + ms.(k)) || stim_any st ms (k + 1))

let rec check_stim_agree st ms p k =
  if k < Array.length ms then begin
    let i = ms.(k) in
    if st.stim_p.(st.base_sig + i) <> p then
      errf "instant %d: synchronous inputs %s disagree on presence"
        st.instants st.prog.Prog.names.(i);
    check_stim_agree st ms p (k + 1)
  end

let check_computed st y =
  if not st.has.(st.base_sig + y) then
    errf "instant %d: signal %s used before being computed"
      st.instants st.prog.Prog.names.(y)

let compile_impl kp =
  try
    let prog = Prog.of_kprocess kp in
    let calc = Calc.analyze kp in
    if not (Calc.consistent calc) then
      errf "clock constraint system is unsatisfiable";
    let nsignals = prog.Prog.n in
    let index x =
      match Prog.index_opt prog x with
      | Some i -> i
      | None -> errf "undeclared signal %s" x
    in
    let class_of =
      Array.init nsignals (fun i ->
          Calc.class_id_of calc prog.Prog.names.(i))
    in
    let nclasses = Calc.class_count calc in
    let clock_bdd =
      Array.init nclasses (fun c -> Calc.clock_of_class_id calc c)
    in
    let is_input = prog.Prog.is_input in
    let lprims = prog.Prog.prims in
    (* presence sources per class *)
    let pdefs = Array.make nclasses Pfree in
    let mgr = Calc.manager calc in
    (* [Bdd.support] walks the shared manager's node arrays; take the
       analysis query lock so concurrent sessions querying the same
       memoized calculus can't grow them under us. *)
    Calc.with_query_lock calc (fun () ->
        for c = 0 to nclasses - 1 do
          let support = Bdd.support mgr clock_bdd.(c) in
          let refers_self =
            List.exists
              (fun v ->
                match Calc.var_kind calc v with
                | Some (`Present c') -> c' = c
                | _ -> false)
              support
          in
          pdefs.(c) <- (if refers_self then Pfree else Pderived)
        done);
    (* stateful primitive outputs override *)
    let stateful_outs lp =
      match lp.Prog.lp_ki.K.ki_prim with
      | Stdproc.Pfifo | Stdproc.Pfifo_reset -> [ 0 ]       (* data *)
      | Stdproc.Pin_event_port -> [ 0 ]                     (* frozen *)
      | Stdproc.Pout_event_port -> [ 0 ]                    (* sent *)
    in
    Array.iteri
      (fun pi lp ->
        List.iter
          (fun pos ->
            pdefs.(class_of.(lp.Prog.lp_outs.(pos))) <- Pprim (pi, pos))
          (stateful_outs lp))
      lprims;
    (* input classes *)
    for i = 0 to nsignals - 1 do
      if is_input.(i) then begin
        let c = class_of.(i) in
        match pdefs.(c) with
        | Pinput members -> pdefs.(c) <- Pinput (i :: members)
        | Pfree -> pdefs.(c) <- Pinput [ i ]
        | Pderived ->
          (* an input whose presence is derived from other clocks: we
             trust the derivation and check the stimulus against it *)
          pdefs.(c) <- Pinput [ i ]
        | Palias _ -> assert false           (* not assigned yet *)
        | Pprim _ ->
          errf "input %s is synchronized with a FIFO-driven clock"
            prog.Prog.names.(i)
      end
    done;
    (* A free presence variable pinned absent is only sound while
       nothing observable forces it true. When the calculus solved an
       observable class's clock as exactly that variable — the
       hierarchy picked the free class as representative, so an input
       (or FIFO-driven) class [c] has clock_bdd = Present c' with c'
       free — the stimulus deciding [c] decides [c'] too: mirror it
       instead of pinning it. *)
    for c = 0 to nclasses - 1 do
      match pdefs.(c) with
      | Pinput _ | Pprim _ -> (
        match Bdd.view mgr clock_bdd.(c) with
        | `Node (v, lo, hi)
          when Bdd.view mgr lo = `Leaf false
               && Bdd.view mgr hi = `Leaf true -> (
          match Calc.var_kind calc v with
          | Some (`Present c') when c' <> c && pdefs.(c') = Pfree ->
            pdefs.(c') <- Palias c
          | _ -> ())
        | _ -> ())
      | Pderived | Pfree | Palias _ -> ()
    done;
    let n_free =
      Array.fold_left
        (fun acc p -> match p with Pfree -> acc + 1 | _ -> acc)
        0 pdefs
    in
    (* resolve every bdd variable appearing in a clock function once,
       so evaluation never consults a name table *)
    let max_var =
      Array.fold_left
        (fun acc b ->
          List.fold_left max acc (Bdd.support mgr b))
        (-1) clock_bdd
    in
    let bddvars = Array.make (max_var + 1) Rnone in
    Array.iter
      (fun b ->
        List.iter
          (fun v ->
            match Calc.var_kind calc v with
            | Some (`Present c) -> bddvars.(v) <- Rpresent c
            | Some (`Cond bsig) -> bddvars.(v) <- Rcond (index bsig)
            | Some (`CondEq (x, k)) -> bddvars.(v) <- Rcondeq (index x, k)
            | None -> ())
          (Bdd.support mgr b))
      clock_bdd;
    (* dependency graph over presence/value nodes *)
    let g = Analysis.Digraph.create () in
    let pnode c = "P" ^ string_of_int c in
    let vnode i = "V" ^ string_of_int i in
    for c = 0 to nclasses - 1 do
      Analysis.Digraph.add_vertex g (pnode c)
    done;
    for i = 0 to nsignals - 1 do
      Analysis.Digraph.add_vertex g (vnode i);
      (* a value needs its class presence *)
      Analysis.Digraph.add_edge g (pnode class_of.(i)) (vnode i)
    done;
    for c = 0 to nclasses - 1 do
      match pdefs.(c) with
      | Pfree -> ()
      | Pinput _ -> ()
      | Palias src -> Analysis.Digraph.add_edge g (pnode src) (pnode c)
      | Pprim (pi, _) ->
        Array.iter
          (fun i -> Analysis.Digraph.add_edge g (pnode class_of.(i)) (pnode c))
          lprims.(pi).Prog.lp_ins
      | Pderived ->
        List.iter
          (fun v ->
            match bddvars.(v) with
            | Rpresent c' ->
              if c' <> c then Analysis.Digraph.add_edge g (pnode c') (pnode c)
            | Rcond bi ->
              Analysis.Digraph.add_edge g (vnode bi) (pnode c);
              Analysis.Digraph.add_edge g (pnode class_of.(bi)) (pnode c)
            | Rcondeq (xi, _) ->
              Analysis.Digraph.add_edge g (vnode xi) (pnode c);
              Analysis.Digraph.add_edge g (pnode class_of.(xi)) (pnode c)
            | Rnone -> ())
          (Bdd.support mgr clock_bdd.(c))
    done;
    let dep_atom dst = function
      | Prog.Avar y -> Analysis.Digraph.add_edge g (vnode y) (vnode dst)
      | Prog.Aconst _ -> ()
    in
    for i = 0 to nsignals - 1 do
      match prog.Prog.vdefs.(i) with
      | Prog.Vnone | Prog.Vdelay -> ()
      | Prog.Vfunc (_, args) -> Array.iter (dep_atom i) args
      | Prog.Vwhen src -> dep_atom i src
      | Prog.Vdefault (l, r) ->
        dep_atom i l;
        dep_atom i r;
        (match l with
         | Prog.Avar y ->
           Analysis.Digraph.add_edge g (pnode class_of.(y)) (vnode i)
         | Prog.Aconst _ -> ());
        (match r with
         | Prog.Avar y ->
           Analysis.Digraph.add_edge g (pnode class_of.(y)) (vnode i)
         | Prog.Aconst _ -> ())
      | Prog.Vprim (pi, _) ->
        Array.iter
          (fun j ->
            Analysis.Digraph.add_edge g (vnode j) (vnode i);
            Analysis.Digraph.add_edge g (pnode class_of.(j)) (vnode i))
          lprims.(pi).Prog.lp_ins
    done;
    let order =
      match Analysis.Digraph.topological_sort g with
      | Ok order -> order
      | Error cycle ->
        errf "causality cycle prevents compilation: %s"
          (String.concat " -> " cycle)
    in
    let plan =
      Array.of_list
        (List.map
           (fun node ->
             let k = int_of_string (String.sub node 1 (String.length node - 1)) in
             if node.[0] = 'P' then Opres k else Oval k)
           order)
    in
    (* ---- compile the schedule to closures over the SoA state ---- *)
    let names = prog.Prog.names in
    let catom = function
      | Prog.Avar y -> CAvar y
      | Prog.Aconst v -> (
        match v with
        | Types.Vint n -> CAconst_i (tg_int, n)
        | Types.Vbool b -> CAconst_i (tg_bool, if b then 1 else 0)
        | Types.Vevent -> CAconst_i (tg_event, 1)
        | Types.Vreal r -> CAconst_r r
        | Types.Vstring s -> CAconst_s s)
    in
    (* decision trees can blow up on shared BDDs; past a global budget
       the remaining classes keep shared-BDD evaluation *)
    let tree_budget = ref 20_000 in
    let rec ctree_of b =
      match Bdd.view mgr b with
      | `Leaf bb -> Cleaf bb
      | `Node (var, lo, hi) ->
        if !tree_budget <= 0 then Cbdd b
        else begin
          decr tree_budget;
          let r =
            if var < Array.length bddvars then bddvars.(var) else Rnone
          in
          let hi' = ctree_of hi in
          let lo' = ctree_of lo in
          Cnode (r, hi', lo')
        end
    in
    let compile_prim_pres c pi pos =
      let lp = lprims.(pi) in
      let ins = lp.Prog.lp_ins in
      match lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        let c0 = class_of.(ins.(0)) and c1 = class_of.(ins.(1)) in
        let c2 = if has_reset then class_of.(ins.(2)) else 0 in
        fun st ->
          let p = st.prims.(pi) in
          let reset_p = has_reset && st.pres.(st.base_cls + c2) in
          let push_p = st.pres.(st.base_cls + c0) in
          let pop_p = st.pres.(st.base_cls + c1) in
          let qlen0 = if reset_p then 0 else p.q_len.(st.scen) in
          st.pres.(st.base_cls + c) <-
            pop_p && qlen0 + (if push_p then 1 else 0) > 0
      | Stdproc.Pin_event_port, 0 ->
        let c1 = class_of.(ins.(1)) in
        fun st ->
          let p = st.prims.(pi) in
          st.pres.(st.base_cls + c) <-
            st.pres.(st.base_cls + c1) && p.q_len.(st.scen) > 0
      | Stdproc.Pout_event_port, 0 ->
        let c0 = class_of.(ins.(0)) and c1 = class_of.(ins.(1)) in
        fun st ->
          let p = st.prims.(pi) in
          st.pres.(st.base_cls + c) <-
            st.pres.(st.base_cls + c1)
            && (st.pres.(st.base_cls + c0) || p.q_len.(st.scen) > 0)
      | _, _ -> fun _ -> assert false
    in
    let compile_pres c =
      match pdefs.(c) with
      | Pfree -> (fun st -> st.pres.(st.base_cls + c) <- false)
      | Palias src ->
        fun st -> st.pres.(st.base_cls + c) <- st.pres.(st.base_cls + src)
      | Pinput members ->
        let ms = Array.of_list members in
        fun st ->
          let p = stim_any st ms 0 in
          check_stim_agree st ms p 0;
          st.pres.(st.base_cls + c) <- p
      | Pprim (pi, pos) -> compile_prim_pres c pi pos
      | Pderived -> (
        match ctree_of clock_bdd.(c) with
        | Cleaf b -> fun st -> st.pres.(st.base_cls + c) <- b
        | ct -> fun st -> st.pres.(st.base_cls + c) <- ceval st ct)
    in
    let compile_func i c op args =
      let cargs = Array.map catom args in
      match op, Array.length args with
      | K.Pid, 1 ->
        let a = cargs.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            copy_atom st (st.base_sig + i) a
          end
      | K.Pclock, 1 ->
        let a = cargs.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            set_e st (st.base_sig + i)
          end
      | K.Punop Ast.Not, 1 ->
        let a = cargs.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            set_b st (st.base_sig + i) (not (atom_bool st a))
          end
      | K.Punop Ast.Neg, 1 ->
        let a = cargs.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            match atom_tag st a with
            | 0 -> set_i st (st.base_sig + i) (-atom_i st a)
            | 3 -> set_r st (st.base_sig + i) (-.atom_r st a)
            | _ -> everrf st "malformed kernel function application"
          end
      | K.Pif, 3 ->
        let a = cargs.(0) and bt = cargs.(1) and bf = cargs.(2) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            atom_check st bt;
            atom_check st bf;
            copy_atom st (st.base_sig + i) (if atom_bool st a then bt else bf)
          end
      | K.Pbinop bop, 2 ->
        let a = cargs.(0) and b = cargs.(1) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            atom_check st b;
            exec_binop st (st.base_sig + i) bop a b
          end
      | (K.Punop _ | K.Pbinop _ | K.Pif | K.Pid | K.Pclock), _ ->
        fun st ->
          if st.pres.(st.base_cls + c) then
            check_args_then_malformed st cargs 0
    in
    let compile_prim_val i c pi pos =
      let lp = lprims.(pi) in
      let ins = lp.Prog.lp_ins in
      match lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        let c2 = if has_reset then class_of.(ins.(2)) else 0 in
        let in0 = ins.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            let p = st.prims.(pi) in
            let reset_p = has_reset && st.pres.(st.base_cls + c2) in
            let qlen0 = if reset_p then 0 else p.q_len.(st.scen) in
            if qlen0 > 0 then copy_queue_head st p (st.base_sig + i)
            else begin
              check_computed st in0;
              copy_sig st (st.base_sig + i) (st.base_sig + in0)
            end
          end
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 1 ->
        let has_reset = Array.length ins = 3 in
        let c0 = class_of.(ins.(0)) and c1 = class_of.(ins.(1)) in
        let c2 = if has_reset then class_of.(ins.(2)) else 0 in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            let p = st.prims.(pi) in
            let reset_p = has_reset && st.pres.(st.base_cls + c2) in
            let push_p = st.pres.(st.base_cls + c0) in
            let pop_p = st.pres.(st.base_cls + c1) in
            let qlen0 = if reset_p then 0 else p.q_len.(st.scen) in
            let n1 =
              if push_p then (
                let m = qlen0 + 1 in
                if m < p.cap then m else p.cap)
              else qlen0
            in
            set_i st (st.base_sig + i)
              (if pop_p && n1 > 0 then n1 - 1 else n1)
          end
      | Stdproc.Pin_event_port, 0 ->
        fun st ->
          if st.pres.(st.base_cls + c) then
            copy_queue_head st st.prims.(pi) (st.base_sig + i)
      | Stdproc.Pin_event_port, 1 ->
        fun st ->
          if st.pres.(st.base_cls + c) then
            set_i st (st.base_sig + i) st.prims.(pi).q_len.(st.scen)
      | Stdproc.Pout_event_port, 0 ->
        let in0 = ins.(0) in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            let p = st.prims.(pi) in
            if p.q_len.(st.scen) = 0 then begin
              check_computed st in0;
              copy_sig st (st.base_sig + i) (st.base_sig + in0)
            end
            else copy_queue_head st p (st.base_sig + i)
          end
      | _, _ -> fun _ -> assert false
    in
    let compile_val i =
      let c = class_of.(i) in
      match prog.Prog.vdefs.(i) with
      | Prog.Vnone ->
        fun st ->
          if st.pres.(st.base_cls + c) && not st.has.(st.base_sig + i) then
            errf "instant %d: present signal %s has no value (missing input?)"
              st.instants names.(i)
      | Prog.Vfunc (op, args) -> compile_func i c op args
      | Prog.Vdelay ->
        fun st ->
          if st.pres.(st.base_cls + c) then
            copy_delay_to_sig st (st.base_sig + i)
      | Prog.Vwhen src ->
        let a = catom src in
        fun st ->
          if st.pres.(st.base_cls + c) then begin
            atom_check st a;
            copy_atom st (st.base_sig + i) a
          end
      | Prog.Vdefault (l, r) -> (
        match l with
        | Prog.Aconst _ ->
          let cl = catom l in
          fun st ->
            if st.pres.(st.base_cls + c) then
              copy_atom st (st.base_sig + i) cl
        | Prog.Avar y -> (
          let cy = class_of.(y) in
          match r with
          | Prog.Aconst _ ->
            let cr = catom r in
            fun st ->
              if st.pres.(st.base_cls + c) then
                if st.pres.(st.base_cls + cy) then begin
                  check_computed st y;
                  copy_sig st (st.base_sig + i) (st.base_sig + y)
                end
                else copy_atom st (st.base_sig + i) cr
          | Prog.Avar z ->
            let cz = class_of.(z) in
            fun st ->
              if st.pres.(st.base_cls + c) then
                if st.pres.(st.base_cls + cy) then begin
                  check_computed st y;
                  copy_sig st (st.base_sig + i) (st.base_sig + y)
                end
                else if st.pres.(st.base_cls + cz) then begin
                  check_computed st z;
                  copy_sig st (st.base_sig + i) (st.base_sig + z)
                end
                else
                  errf "instant %d: merge %s present with both branches absent"
                    st.instants names.(i)))
      | Prog.Vprim (pi, pos) -> compile_prim_val i c pi pos
    in
    let ops =
      Array.map
        (function Opres c -> compile_pres c | Oval i -> compile_val i)
        plan
    in
    Ok
      { p_prog = prog; p_calc = calc; p_class_of = class_of;
        p_nclasses = nclasses; p_pdefs = pdefs; p_clock_bdd = clock_bdd;
        p_bddvars = bddvars; p_plan = plan; p_ops = ops; p_n_free = n_free;
        p_decls = Prog.decls prog }
  with
  | Comp_error m -> Error m
  | Prog.Lower_error m -> Error m
  | Invalid_argument m -> Error m

(* a fresh mutable instance over a (possibly shared) plan *)
let instantiate ?(scenarios = 1) pl =
  let prog = pl.p_prog in
  let n = prog.Prog.n in
  let k = scenarios in
  let nc = pl.p_nclasses in
  let st =
    { pl;
      prog;
      calc = pl.p_calc;
      class_of = pl.p_class_of;
      nclasses = nc;
      pdefs = pl.p_pdefs;
      clock_bdd = pl.p_clock_bdd;
      bddvars = pl.p_bddvars;
      plan = pl.p_plan;
      ops = pl.p_ops;
      n_free = pl.p_n_free;
      n;
      nscen = k;
      scen = 0;
      base_sig = 0;
      base_cls = 0;
      ri = Array.make (k * n) 0;
      rr = Array.make (k * n) 0.;
      rs = Array.make (k * n) "";
      tg = Array.make (k * n) 0;
      has = Array.make (k * n) false;
      stim_p = Array.make (k * n) false;
      pres = Array.make (k * nc) false;
      di = Array.make (k * n) 0;
      dr = Array.make (k * n) 0.;
      ds = Array.make (k * n) "";
      dtg = Array.make (k * n) 0;
      prims =
        Array.map
          (fun lp ->
            let cap = max 1 lp.Prog.lp_capacity in
            { lp; cap;
              q_ri = Array.make (k * cap) 0;
              q_rr = Array.make (k * cap) 0.;
              q_rs = Array.make (k * cap) "";
              q_tg = Array.make (k * cap) 0;
              q_len = Array.make k 0;
              q_head = Array.make k 0;
              overflows = Array.make k 0 })
          prog.Prog.prims;
      traces = Array.init k (fun _ -> Trace.create pl.p_decls);
      instants = 0;
      recording = true }
  in
  for s = 0 to k - 1 do
    for i = 0 to n - 1 do
      set_delay_slot st ((s * n) + i) prog.Prog.delay_init.(i)
    done
  done;
  st

let record_plan_metrics pl =
  let mgr = Calc.manager pl.p_calc in
  Metrics.set m_plan_ops (Array.length pl.p_plan);
  Metrics.set m_bdd_nodes (Bdd.node_count mgr);
  let calls, hits = Bdd.apply_stats mgr in
  Metrics.set m_bdd_apply_calls calls;
  Metrics.set m_bdd_apply_hit_pct
    (if calls = 0 then 0 else 100 * hits / calls);
  Metrics.set m_free_classes pl.p_n_free

(* Plans are memoized on the kernel digest (compile errors too — they
   are just as deterministic). The mutex makes the memo safe from the
   explorer's worker domains and prevents two domains from building
   one plan twice; cold builds are serialized, which is irrelevant
   next to their cost being paid once. *)
let plan_cache : (string, (plan, string) result) Hashtbl.t = Hashtbl.create 64
let plan_lock = Mutex.create ()
let plan_cache_cap = 256

let plan_of_digest kp =
  let dg = K.digest kp in
  Mutex.protect plan_lock @@ fun () ->
  match Hashtbl.find_opt plan_cache dg with
  | Some r -> Metrics.incr m_cache_hits; r
  | None ->
    Metrics.incr m_cache_misses;
    Metrics.incr m_plan_builds;
    let r =
      Putil.Tracing.with_span "compile.plan"
        ~args:[ ("signals", Putil.Tracing.Aint (K.st_count (K.sigtab kp))) ]
      @@ fun () ->
      Metrics.time m_compile_ns (fun () -> compile_impl kp)
    in
    (match r with Ok pl -> record_plan_metrics pl | Error _ -> ());
    if Hashtbl.length plan_cache >= plan_cache_cap then
      Hashtbl.reset plan_cache;
    Hashtbl.add plan_cache dg r;
    r

(* Physical-equality fast path over the digest memo: re-instantiating
   the same in-memory kernel (the common case in batched and
   multi-scenario runs) skips the Marshal-based digest entirely. *)
let plan_last : (K.kprocess * (plan, string) result) option Atomic.t =
  Atomic.make None

let plan_of kp =
  match Atomic.get plan_last with
  | Some (kp0, r) when kp0 == kp -> Metrics.incr m_cache_hits; r
  | _ ->
    let r = plan_of_digest kp in
    Atomic.set plan_last (Some (kp, r));
    r

let compile kp =
  Metrics.incr m_compilations;
  Result.map (fun pl -> instantiate pl) (plan_of kp)

let compile_scenarios kp ~scenarios =
  if scenarios < 1 then Error "scenarios must be >= 1"
  else begin
    Metrics.incr m_compilations;
    Result.map (fun pl -> instantiate ~scenarios pl) (plan_of kp)
  end

let compile_uncached kp =
  Metrics.incr m_compilations;
  Metrics.incr m_plan_builds;
  let r = Metrics.time m_compile_ns (fun () -> compile_impl kp) in
  (match r with Ok pl -> record_plan_metrics pl | Error _ -> ());
  Result.map (fun pl -> instantiate pl) r

let fork st = instantiate ~scenarios:st.nscen st.pl

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let select_scenario st s =
  st.scen <- s;
  st.base_sig <- s * st.n;
  st.base_cls <- s * st.nclasses

let scenarios st = st.nscen
let n_signals st = st.n
let signal_index st x = Prog.index_opt st.prog x
let signal_name st i = st.prog.Prog.names.(i)
let is_input st i = st.prog.Prog.is_input.(i)

let stim_clear st =
  Array.fill st.has st.base_sig st.n false;
  Array.fill st.stim_p st.base_sig st.n false

let set_stim st i v =
  if i < 0 || i >= st.n then errf "stimulus index %d out of range" i;
  if not st.prog.Prog.is_input.(i) then
    errf "stimulus for non-input signal %s" st.prog.Prog.names.(i);
  let j = st.base_sig + i in
  st.stim_p.(j) <- true;
  set_slot_value st j v

(* presence/value sanity pass; returns the present count *)
let rec check_present st b i acc =
  if i >= st.n then acc
  else if st.pres.(st.base_cls + st.class_of.(i)) then begin
    if not st.has.(b + i) then
      errf "instant %d: signal %s present without a value" st.instants
        st.prog.Prog.names.(i);
    check_present st b (i + 1) (acc + 1)
  end
  else check_present st b (i + 1) acc

let rec fill_row st b i k row =
  if i < st.n then
    if st.pres.(st.base_cls + st.class_of.(i)) then begin
      row.(k) <- (i, slot_value st (b + i));
      fill_row st b (i + 1) (k + 1) row
    end
    else fill_row st b (i + 1) k row

(* one instant for the selected scenario; stimulus must already be in
   the stim buffer. Allocation-free in steady state when recording is
   off (and when on, allocates only the trace row). *)
let exec_instant st =
  Array.fill st.pres st.base_cls st.nclasses false;
  let ops = st.ops in
  for k = 0 to Array.length ops - 1 do
    (Array.unsafe_get ops k) st
  done;
  let b = st.base_sig in
  let class_of = st.class_of in
  (* sanity: inputs marked present must be in present classes *)
  for i = 0 to st.n - 1 do
    if st.stim_p.(b + i) && not st.pres.(st.base_cls + class_of.(i)) then
      errf "instant %d: input %s present against its derived clock"
        st.instants st.prog.Prog.names.(i)
  done;
  let cnt = check_present st b 0 0 in
  if st.recording then begin
    let row = Array.make cnt (0, Types.Vevent) in
    fill_row st b 0 0 row;
    Trace.push_row st.traces.(st.scen) row
  end;
  (* commit: delays then queues *)
  let delay_src = st.prog.Prog.delay_src in
  for i = 0 to st.n - 1 do
    let src = delay_src.(i) in
    if src >= 0 && st.pres.(st.base_cls + class_of.(src)) then
      copy_sig_to_delay st (b + src) (b + i)
  done;
  let prims = st.prims in
  for k = 0 to Array.length prims - 1 do
    commit_prim st prims.(k)
  done;
  Metrics.incr m_instants

let step_prepared st =
  let t0 = Clock.now_ns () in
  let r =
    try
      exec_instant st;
      st.instants <- st.instants + 1;
      Ok ()
    with Comp_error m -> Error m
  in
  Metrics.add_span_ns m_step_ns (Clock.now_ns () - t0);
  r

let rec present_assoc_from st b i =
  if i >= st.n then []
  else if st.pres.(st.base_cls + st.class_of.(i)) then
    (st.prog.Prog.names.(i), slot_value st (b + i))
    :: present_assoc_from st b (i + 1)
  else present_assoc_from st b (i + 1)

let out_present st i = st.pres.(st.base_cls + st.class_of.(i))

let out_value st i =
  let j = st.base_sig + i in
  if st.pres.(st.base_cls + st.class_of.(i)) && st.has.(j) then
    Some (slot_value st j)
  else None

let iter_present st f =
  let b = st.base_sig in
  for i = 0 to st.n - 1 do
    if st.pres.(st.base_cls + st.class_of.(i)) then
      f i (slot_value st (b + i))
  done

let run_batched st ~n ~fill =
  let t0 = Clock.now_ns () in
  let r =
    try
      select_scenario st 0;
      for k = 0 to n - 1 do
        stim_clear st;
        fill st k;
        exec_instant st;
        st.instants <- st.instants + 1
      done;
      Ok ()
    with Comp_error m -> Error m
  in
  Metrics.add_span_ns m_step_ns (Clock.now_ns () - t0);
  r

let step_many st ~fill =
  let t0 = Clock.now_ns () in
  let r =
    try
      for s = 0 to st.nscen - 1 do
        select_scenario st s;
        stim_clear st;
        fill st s;
        exec_instant st
      done;
      select_scenario st 0;
      st.instants <- st.instants + 1;
      Ok ()
    with Comp_error m -> Error m
  in
  Metrics.add_span_ns m_step_ns (Clock.now_ns () - t0);
  r

let run kp ~stimuli =
  match compile kp with
  | Error m -> Error m
  | Ok st ->
    (* named stimulus → dense buffer, one instant *)
    let step_named stim =
      let t0 = Clock.now_ns () in
      let r =
        try
          stim_clear st;
          List.iter
            (fun (x, v) ->
              match Prog.index_opt st.prog x with
              | Some i -> set_stim st i v
              | None -> errf "stimulus for unknown signal %s" x)
            stim;
          exec_instant st;
          st.instants <- st.instants + 1;
          Ok ()
        with Comp_error m -> Error m
      in
      Metrics.add_span_ns m_step_ns (Clock.now_ns () - t0);
      r
    in
    let rec go = function
      | [] -> Ok st.traces.(0)
      | stim :: rest -> (
        match step_named stim with
        | Ok () -> go rest
        | Error m -> Error m)
    in
    go stimuli

let trace st = st.traces.(0)
let trace_of st s = st.traces.(s)
let instant st = st.instants

(* ------------------------------------------------------------------ *)
(* State management                                                    *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  s_dstate : Types.value array;          (* boxed, nscen * n *)
  s_queues : Types.value list array;     (* nprims * nscen, front first *)
  s_instants : int;
}

let queue_list p s =
  List.init p.q_len.(s) (fun k ->
      let idx = (s * p.cap) + ((p.q_head.(s) + k) mod p.cap) in
      match p.q_tg.(idx) with
      | 0 -> Types.Vint p.q_ri.(idx)
      | 1 -> if p.q_ri.(idx) <> 0 then Types.Vbool true else Types.Vbool false
      | 2 -> Types.Vevent
      | 3 -> Types.Vreal p.q_rr.(idx)
      | _ -> Types.Vstring p.q_rs.(idx))

let snapshot st =
  let nprims = Array.length st.prims in
  { s_dstate = Array.init (st.nscen * st.n) (fun j -> delay_boxed st j);
    s_queues =
      Array.init (nprims * st.nscen) (fun k ->
          queue_list st.prims.(k / st.nscen) (k mod st.nscen));
    s_instants = st.instants }

let restore st snap =
  for j = 0 to (st.nscen * st.n) - 1 do
    set_delay_slot st j snap.s_dstate.(j)
  done;
  Array.iteri
    (fun k vs ->
      let p = st.prims.(k / st.nscen) and s = k mod st.nscen in
      qclear p s;
      List.iter
        (fun v ->
          let idx = (s * p.cap) + ((p.q_head.(s) + p.q_len.(s)) mod p.cap) in
          (match v with
           | Types.Vint n -> p.q_tg.(idx) <- tg_int; p.q_ri.(idx) <- n
           | Types.Vbool b ->
             p.q_tg.(idx) <- tg_bool;
             p.q_ri.(idx) <- (if b then 1 else 0)
           | Types.Vevent -> p.q_tg.(idx) <- tg_event; p.q_ri.(idx) <- 1
           | Types.Vreal r -> p.q_tg.(idx) <- tg_real; p.q_rr.(idx) <- r
           | Types.Vstring s' -> p.q_tg.(idx) <- tg_string; p.q_rs.(idx) <- s');
          p.q_len.(s) <- p.q_len.(s) + 1)
        vs)
    snap.s_queues;
  st.instants <- snap.s_instants

let set_recording st b = st.recording <- b

let state_digest st =
  let sn = snapshot st in
  Marshal.to_string (sn.s_dstate, sn.s_queues) []

(* Fixed-width state keys for visited sets: serialize the mutable state
   (delay registers + FIFO rings, the same fields [snapshot] captures
   minus the instant counter) into a reused byte buffer, then hash to a
   16-byte MD5. Unlike [state_digest], the per-call garbage is one
   16-byte string instead of a Marshal image of the boxed state. *)

type keybuf = { mutable kbytes : Bytes.t; mutable kpos : int }

let keybuf () = { kbytes = Bytes.create 512; kpos = 0 }

let kb_ensure kb extra =
  let need = kb.kpos + extra in
  let cap = Bytes.length kb.kbytes in
  if need > cap then begin
    let ncap = ref (cap * 2) in
    while !ncap < need do ncap := !ncap * 2 done;
    let b = Bytes.create !ncap in
    Bytes.blit kb.kbytes 0 b 0 kb.kpos;
    kb.kbytes <- b
  end

let kb_byte kb v =
  kb_ensure kb 1;
  Bytes.unsafe_set kb.kbytes kb.kpos (Char.unsafe_chr (v land 0xff));
  kb.kpos <- kb.kpos + 1

let kb_int kb v =
  kb_ensure kb 8;
  let b = kb.kbytes and p = kb.kpos in
  Bytes.unsafe_set b p (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
  Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
  Bytes.unsafe_set b (p + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
  Bytes.unsafe_set b (p + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
  Bytes.unsafe_set b (p + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
  Bytes.unsafe_set b (p + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
  Bytes.unsafe_set b (p + 7) (Char.unsafe_chr ((v asr 56) land 0xff));
  kb.kpos <- p + 8

(* all 64 bits matter (sign included), so split before the 63-bit int *)
let kb_float kb f =
  let bits = Int64.bits_of_float f in
  kb_int kb (Int64.to_int (Int64.shift_right_logical bits 32));
  kb_int kb (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))

let kb_string kb s =
  let len = String.length s in
  kb_int kb len;
  kb_ensure kb len;
  Bytes.blit_string s 0 kb.kbytes kb.kpos len;
  kb.kpos <- kb.kpos + len

let state_key st kb =
  kb.kpos <- 0;
  for j = 0 to (st.nscen * st.n) - 1 do
    let t = st.dtg.(j) in
    kb_byte kb t;
    (match t with
     | 3 -> kb_float kb st.dr.(j)
     | 4 -> kb_string kb st.ds.(j)
     | _ -> kb_int kb st.di.(j))
  done;
  Array.iter
    (fun p ->
      for s = 0 to st.nscen - 1 do
        let len = p.q_len.(s) in
        kb_int kb len;
        for k = 0 to len - 1 do
          let idx = (s * p.cap) + ((p.q_head.(s) + k) mod p.cap) in
          let t = p.q_tg.(idx) in
          kb_byte kb t;
          match t with
          | 3 -> kb_float kb p.q_rr.(idx)
          | 4 -> kb_string kb p.q_rs.(idx)
          | _ -> kb_int kb p.q_ri.(idx)
        done
      done)
    st.prims;
  Digest.subbytes kb.kbytes 0 kb.kpos

let plan_length st = Array.length st.plan
let free_classes st = st.n_free

let present_assoc st = present_assoc_from st st.base_sig 0

(* ------------------------------------------------------------------ *)
(* Symbolic introspection: a read-only view of the compiled plan so    *)
(* the symbolic reachability engine can rebuild the same presence and  *)
(* value semantics as BDD formulas instead of imperative closures.     *)
(* ------------------------------------------------------------------ *)

type sym_pdef =
  | Sym_free
  | Sym_input of int list
  | Sym_prim of int * int
  | Sym_derived
  | Sym_alias of int

type sym_varres =
  | Sym_present of int
  | Sym_cond of int
  | Sym_condeq of int * int
  | Sym_none

type sym_view = {
  sv_prog : Prog.t;
  sv_nclasses : int;
  sv_class_of : int array;
  sv_pdefs : sym_pdef array;
  sv_mgr : Bdd.manager;
  sv_clock_bdd : Bdd.t array;
  sv_bddvars : sym_varres array;
  sv_order : [ `Pres of int | `Val of int ] array;
}

let sym_view st =
  { sv_prog = st.prog;
    sv_nclasses = st.nclasses;
    sv_class_of = st.class_of;
    sv_pdefs =
      Array.map
        (function
          | Pfree -> Sym_free
          | Pinput l -> Sym_input l
          | Pprim (p, k) -> Sym_prim (p, k)
          | Pderived -> Sym_derived
          | Palias src -> Sym_alias src)
        st.pdefs;
    sv_mgr = Calc.manager st.calc;
    sv_clock_bdd = st.clock_bdd;
    sv_bddvars =
      Array.map
        (function
          | Rpresent c -> Sym_present c
          | Rcond i -> Sym_cond i
          | Rcondeq (i, k) -> Sym_condeq (i, k)
          | Rnone -> Sym_none)
        st.bddvars;
    sv_order =
      Array.map (function Opres c -> `Pres c | Oval i -> `Val i) st.plan }

let free_class_members st =
  let acc = ref [] in
  for i = st.prog.Prog.n - 1 downto 0 do
    match st.pdefs.(st.class_of.(i)) with
    | Pfree -> acc := st.prog.Prog.names.(i) :: !acc
    | Pinput _ | Pprim _ | Pderived | Palias _ -> ()
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* C code generation (the Polychrony back-end pillar, ref [15]):       *)
(* compile the execution plan to a self-contained C program.           *)
(* ------------------------------------------------------------------ *)

let styp_of st i = st.prog.Prog.types.(i)

let to_c ?(name = "signal_step") st =
  let buf = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let prog = st.prog in
  let nsignals = prog.Prog.n in
  let names = prog.Prog.names in
  let is_real i = styp_of st i = Types.Treal in
  (* reject string-typed signals: no C mapping *)
  let has_string =
    Array.exists (fun ty -> ty = Types.Tstring) prog.Prog.types
  in
  if has_string then Error "string signals have no C mapping"
  else begin
    let v i = Printf.sprintf "v_%d" i in
    let p c = Printf.sprintf "p_%d" c in
    let inputs = prog.Prog.inputs in
    let input_index =
      let h = Hashtbl.create 8 in
      Array.iteri (fun k i -> Hashtbl.replace h i k) inputs;
      h
    in
    pf "/* generated by polychrony-aadl from process %s */\n"
      prog.Prog.kp.K.kname;
    pf "#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n\n";
    pf "static long sdiv(long a, long b){ if(!b){fprintf(stderr,\"division by zero\\n\");exit(2);} return a/b; }\n";
    pf "static long smod(long a, long b){ if(!b){fprintf(stderr,\"modulo by zero\\n\");exit(2);} return a%%b; }\n\n";
    (* signal storage *)
    for i = 0 to nsignals - 1 do
      if is_real i then pf "static double %s; /* %s */\n" (v i) names.(i)
      else pf "static long %s; /* %s */\n" (v i) names.(i)
    done;
    for c = 0 to st.nclasses - 1 do
      pf "static int %s;\n" (p c)
    done;
    (* delay state (scenario 0 registers hold the current values) *)
    for i = 0 to nsignals - 1 do
      if prog.Prog.delay_src.(i) >= 0 then begin
        match delay_boxed st i with
        | Types.Vreal r -> pf "static double d_%d = %.17g;\n" i r
        | Types.Vint n -> pf "static long d_%d = %d;\n" i n
        | Types.Vbool b -> pf "static long d_%d = %d;\n" i (if b then 1 else 0)
        | Types.Vevent -> pf "static long d_%d = 1;\n" i
        | Types.Vstring _ -> ()
      end
    done;
    (* primitive queues *)
    Array.iteri
      (fun k pr ->
        pf "static long q%d_buf[%d]; static int q%d_len = 0, q%d_head = 0;\n"
          k pr.lp.Prog.lp_capacity k k)
      st.prims;
    pf "\nstatic void qpush(long*buf,int cap,int*len,int*head,int policy,long x){\n";
    pf "  if(*len >= cap){\n";
    pf "    if(policy==0){ buf[*head]= 0; *head=(*head+1)%%cap; (*len)--; }\n";
    pf "    else if(policy==1){ return; }\n";
    pf "    else { fprintf(stderr,\"queue overflow\\n\"); exit(3); }\n";
    pf "  }\n";
    pf "  buf[(*head + *len) %% cap] = x; (*len)++;\n}\n";
    pf "static long qpeek(long*buf,int cap,int head){ (void)cap; return buf[head]; }\n";
    pf "static void qpop(int cap,int*len,int*head){ if(*len>0){ *head=(*head+1)%%cap; (*len)--; } }\n\n";
    (* input buffers *)
    let ni = Array.length inputs in
    pf "static int in_p[%d]; static double in_raw[%d];\n\n" (max ni 1) (max ni 1);
    (* BDD compilation *)
    let mgr = Calc.manager st.calc in
    let rec bdd_expr b =
      match Bdd.view mgr b with
      | `Leaf true -> "1"
      | `Leaf false -> "0"
      | `Node (var, lo, hi) ->
        let cond =
          match
            (if var < Array.length st.bddvars then st.bddvars.(var) else Rnone)
          with
          | Rpresent c -> p c
          | Rcond bi ->
            Printf.sprintf "(%s && %s)" (p st.class_of.(bi)) (v bi)
          | Rcondeq (xi, k) ->
            Printf.sprintf "(%s && %s == %d)" (p st.class_of.(xi)) (v xi) k
          | Rnone -> "0"
        in
        Printf.sprintf "(%s ? %s : %s)" cond (bdd_expr hi) (bdd_expr lo)
    in
    let atom_expr = function
      | Prog.Avar y -> v y
      | Prog.Aconst (Types.Vint n) -> string_of_int n
      | Prog.Aconst (Types.Vbool b) -> if b then "1" else "0"
      | Prog.Aconst Types.Vevent -> "1"
      | Prog.Aconst (Types.Vreal r) -> Printf.sprintf "%.17g" r
      | Prog.Aconst (Types.Vstring _) -> "0"
    in
    let prim_id pr st =
      let rec go k = if st.prims.(k) == pr then k else go (k + 1) in
      go 0
    in
    let prim_pres_expr pr pos =
      let ins = pr.lp.Prog.lp_ins in
      let pin k = p st.class_of.(ins.(k)) in
      match pr.lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        let k = prim_id pr st in
        Printf.sprintf
          "(%s && ((%s ? 0 : q%d_len) + (%s ? 1 : 0) > 0))"
          (pin 1)
          (if has_reset then pin 2 else "0")
          k (pin 0)
      | Stdproc.Pin_event_port, 0 ->
        Printf.sprintf "(%s && q%d_len > 0)" (pin 1) (prim_id pr st)
      | Stdproc.Pout_event_port, 0 ->
        Printf.sprintf "(%s && (%s || q%d_len > 0))" (pin 1) (pin 0)
          (prim_id pr st)
      | _ -> "0"
    in
    let prim_val_expr pr pos =
      let ins = pr.lp.Prog.lp_ins in
      let cap = pr.lp.Prog.lp_capacity in
      let pin k = p st.class_of.(ins.(k)) in
      let vin k = v ins.(k) in
      let k = prim_id pr st in
      match pr.lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        Printf.sprintf
          "(((%s ? 0 : q%d_len) > 0) ? qpeek(q%d_buf,%d,q%d_head) : %s)"
          (if has_reset then pin 2 else "0")
          k k cap k (vin 0)
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 1 ->
        let has_reset = Array.length ins = 3 in
        let n0 =
          Printf.sprintf "(%s ? 0 : q%d_len)"
            (if has_reset then pin 2 else "0") k
        in
        let n1 =
          Printf.sprintf
            "(%s ? ((%s + 1) < %d ? (%s + 1) : %d) : %s)"
            (pin 0) n0 cap n0 cap n0
        in
        Printf.sprintf "((%s && %s > 0) ? %s - 1 : %s)" (pin 1) n1 n1 n1
      | Stdproc.Pin_event_port, 0 ->
        Printf.sprintf "qpeek(q%d_buf,%d,q%d_head)" k cap k
      | Stdproc.Pin_event_port, 1 -> Printf.sprintf "(long)q%d_len" k
      | Stdproc.Pout_event_port, 0 ->
        Printf.sprintf "(q%d_len > 0 ? qpeek(q%d_buf,%d,q%d_head) : %s)"
          k k cap k (vin 0)
      | _ -> "0"
    in
    (* step function *)
    pf "static void step(void){\n";
    Array.iter
      (fun op ->
        match op with
        | Opres c -> (
          match st.pdefs.(c) with
          | Pfree -> pf "  %s = 0;\n" (p c)
          | Pinput members ->
            let flags =
              List.map
                (fun i ->
                  Printf.sprintf "in_p[%d]" (Hashtbl.find input_index i))
                members
            in
            pf "  %s = %s;\n" (p c) (String.concat " || " flags)
          | Pprim (pi, pos) ->
            pf "  %s = %s;\n" (p c) (prim_pres_expr st.prims.(pi) pos)
          | Palias src -> pf "  %s = %s;\n" (p c) (p src)
          | Pderived -> pf "  %s = %s;\n" (p c) (bdd_expr st.clock_bdd.(c)))
        | Oval i ->
          let guard = p st.class_of.(i) in
          (match prog.Prog.vdefs.(i) with
           | Prog.Vnone ->
             if prog.Prog.is_input.(i) then begin
               let k = Hashtbl.find input_index i in
               if is_real i then
                 pf "  if (%s) %s = in_raw[%d];\n" guard (v i) k
               else pf "  if (%s) %s = (long)in_raw[%d];\n" guard (v i) k
             end
           | Prog.Vfunc (op, args) ->
             let e =
               match op, Array.to_list args with
               | K.Pid, [ a ] -> atom_expr a
               | K.Pclock, [ _ ] -> "1"
               | K.Punop Ast.Not, [ a ] ->
                 Printf.sprintf "(!%s)" (atom_expr a)
               | K.Punop Ast.Neg, [ a ] ->
                 Printf.sprintf "(-%s)" (atom_expr a)
               | K.Pif, [ c0; t; f ] ->
                 Printf.sprintf "(%s ? %s : %s)" (atom_expr c0) (atom_expr t)
                   (atom_expr f)
               | K.Pbinop bop, [ a; b ] ->
                 let x = atom_expr a and y = atom_expr b in
                 (match bop with
                  | Ast.Add -> Printf.sprintf "(%s + %s)" x y
                  | Ast.Sub -> Printf.sprintf "(%s - %s)" x y
                  | Ast.Mul -> Printf.sprintf "(%s * %s)" x y
                  | Ast.Div ->
                    if is_real i then Printf.sprintf "(%s / %s)" x y
                    else Printf.sprintf "sdiv(%s, %s)" x y
                  | Ast.Mod -> Printf.sprintf "smod(%s, %s)" x y
                  | Ast.And -> Printf.sprintf "(%s && %s)" x y
                  | Ast.Or -> Printf.sprintf "(%s || %s)" x y
                  | Ast.Xor -> Printf.sprintf "(!!%s != !!%s)" x y
                  | Ast.Eq -> Printf.sprintf "(%s == %s)" x y
                  | Ast.Neq -> Printf.sprintf "(%s != %s)" x y
                  | Ast.Lt -> Printf.sprintf "(%s < %s)" x y
                  | Ast.Le -> Printf.sprintf "(%s <= %s)" x y
                  | Ast.Gt -> Printf.sprintf "(%s > %s)" x y
                  | Ast.Ge -> Printf.sprintf "(%s >= %s)" x y)
               | _, _ -> "0"
             in
             pf "  if (%s) %s = %s;\n" guard (v i) e
           | Prog.Vdelay -> pf "  if (%s) %s = d_%d;\n" guard (v i) i
           | Prog.Vwhen src ->
             pf "  if (%s) %s = %s;\n" guard (v i) (atom_expr src)
           | Prog.Vdefault (l, r) ->
             let rhs =
               match l, r with
               | Prog.Aconst _, _ -> atom_expr l
               | Prog.Avar y, Prog.Aconst _ ->
                 Printf.sprintf "(%s ? %s : %s)" (p st.class_of.(y)) (v y)
                   (atom_expr r)
               | Prog.Avar y, Prog.Avar z ->
                 Printf.sprintf "(%s ? %s : %s)" (p st.class_of.(y)) (v y)
                   (v z)
             in
             pf "  if (%s) %s = %s;\n" guard (v i) rhs
           | Prog.Vprim (pi, pos) ->
             pf "  if (%s) %s = %s;\n" guard (v i)
               (prim_val_expr st.prims.(pi) pos)))
      st.plan;
    (* commit: delays then queues *)
    for i = 0 to nsignals - 1 do
      let src = prog.Prog.delay_src.(i) in
      if src >= 0 then
        pf "  if (%s) d_%d = %s;\n" (p st.class_of.(src)) i (v src)
    done;
    Array.iteri
      (fun k pr ->
        let ins = pr.lp.Prog.lp_ins in
        let cap = pr.lp.Prog.lp_capacity in
        let pin j = p st.class_of.(ins.(j)) in
        let vin j = v ins.(j) in
        let policy =
          match pr.lp.Prog.lp_policy with
          | Prog.Drop_oldest -> 0
          | Prog.Drop_newest -> 1
          | Prog.Overflow_error -> 2
        in
        match pr.lp.Prog.lp_ki.K.ki_prim with
        | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
          if Array.length ins = 3 then
            pf "  if (%s) { q%d_len = 0; q%d_head = 0; }\n" (pin 2) k k;
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0);
          pf "  if (%s) qpop(%d,&q%d_len,&q%d_head);\n" (pin 1) cap k k
        | Stdproc.Pin_event_port ->
          pf "  if (%s) { q%d_len = 0; q%d_head = 0; }\n" (pin 1) k k;
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0)
        | Stdproc.Pout_event_port ->
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0);
          pf "  if (%s) qpop(%d,&q%d_len,&q%d_head);\n" (pin 1) cap k k)
      st.prims;
    pf "}\n\n";
    (* main: read stimuli lines, run, print present signals *)
    pf "int main(void){\n";
    pf "  char line[1 << 16];\n";
    pf "  while (fgets(line, sizeof line, stdin)) {\n";
    pf "    char *tok = strtok(line, \" \\t\\r\\n\");\n";
    pf "    for (int k = 0; k < %d; k++) {\n" ni;
    pf "      if (!tok || (tok[0]=='-' && tok[1]==0)) { in_p[k]=0; in_raw[k]=0; }\n";
    pf "      else { in_p[k]=1; in_raw[k]=strtod(tok, 0); }\n";
    pf "      if (tok) tok = strtok(0, \" \\t\\r\\n\");\n";
    pf "    }\n";
    pf "    step();\n";
    for i = 0 to nsignals - 1 do
      if is_real i then
        pf "    if (%s) printf(\"%s=%%.17g \", %s);\n" (p st.class_of.(i))
          names.(i) (v i)
      else
        pf "    if (%s) printf(\"%s=%%ld \", %s);\n" (p st.class_of.(i))
          names.(i) (v i)
    done;
    pf "    printf(\"\\n\");\n";
    pf "  }\n  return 0;\n}\n";
    ignore name;
    Metrics.set m_codegen_bytes (Buffer.length buf);
    Ok (Buffer.contents buf)
  end
