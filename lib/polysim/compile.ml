module K = Signal_lang.Kernel
module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Stdproc = Signal_lang.Stdproc
module Calc = Clocks.Calculus
module Bdd = Clocks.Bdd
module Metrics = Putil.Metrics

let m_compilations = Metrics.counter "compile.compilations"
let m_plan_builds = Metrics.counter "compile.plan_builds"
let m_cache_hits = Metrics.counter "pipeline.cache_hits"
let m_cache_misses = Metrics.counter "pipeline.cache_misses"
let m_compile_ns = Metrics.timer "compile.compile_ns"
let m_plan_ops = Metrics.gauge "compile.plan_ops"
let m_bdd_nodes = Metrics.gauge "compile.bdd_nodes"
let m_bdd_apply_calls = Metrics.gauge "compile.bdd_apply_calls"
let m_bdd_apply_hit_pct = Metrics.gauge "compile.bdd_apply_hit_pct"
let m_free_classes = Metrics.gauge "compile.free_classes"
let m_instants = Metrics.counter "compile.instants"
let m_step_ns = Metrics.timer "compile.step_ns"
let m_codegen_bytes = Metrics.gauge "compile.codegen_bytes"

exception Comp_error of string

let errf fmt = Format.kasprintf (fun m -> raise (Comp_error m)) fmt

(* how a class's presence is decided *)
type pdef =
  | Pinput of int list             (* input signal indices in the class *)
  | Pprim of int * int             (* primitive index, output position *)
  | Pderived                       (* evaluate the clock function *)
  | Pfree                          (* default to absent *)

type op =
  | Opres of int
  | Oval of int

type prim_st = {
  lp : Prog.lprim;
  queue : Types.value Queue.t;
  mutable overflows : int;
}

(* BDD variable, resolved at compile time so the per-instant clock
   evaluation is pure array indexing *)
type varres =
  | Rpresent of int                (* class id *)
  | Rcond of int                   (* boolean signal index *)
  | Rcondeq of int * int           (* integer signal index, constant *)
  | Rnone

(* The compiler is split in two: an immutable [plan] — everything that
   depends only on the kernel (lowered IR, clock analysis, presence
   definitions, clock BDDs, topologically sorted op schedule) — and a
   mutable instance [t] holding per-run state (delay registers,
   primitive queues, per-instant scratch, trace). Plans are memoized
   on the kernel's structural digest and shared freely, including
   across domains: stepping an instance only reads the plan (clock
   evaluation uses [Bdd.eval], which never mutates the manager), so
   each worker of the parallel explorer instantiates its own [t] over
   the one shared plan. *)
type plan = {
  p_prog : Prog.t;                 (* shared lowered IR (same as Engine) *)
  p_calc : Calc.t;
  p_class_of : int array;
  p_nclasses : int;
  p_pdefs : pdef array;
  p_clock_bdd : Bdd.t array;       (* per class *)
  p_bddvars : varres array;        (* bdd variable -> resolution *)
  p_plan : op array;
  p_n_free : int;                  (* statically free classes *)
}

type t = {
  (* plan fields, aliased for direct access on the hot path *)
  prog : Prog.t;
  calc : Calc.t;
  class_of : int array;
  nclasses : int;
  pdefs : pdef array;
  clock_bdd : Bdd.t array;
  bddvars : varres array;
  plan : op array;
  n_free : int;
  (* instance-owned state *)
  prims : prim_st array;
  dstate : Types.value array;      (* delay state per destination signal *)
  pres : bool array;               (* per class, this instant *)
  vals : Types.value option array; (* per signal, this instant *)
  stim_present : bool array;       (* per signal, this instant *)
  tr : Trace.t;
  mutable instants : int;
  mutable recording : bool;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile_impl kp =
  try
    let prog = Prog.of_kprocess kp in
    let calc = Calc.analyze kp in
    if not (Calc.consistent calc) then
      errf "clock constraint system is unsatisfiable";
    let nsignals = prog.Prog.n in
    let index x =
      match Prog.index_opt prog x with
      | Some i -> i
      | None -> errf "undeclared signal %s" x
    in
    let class_of =
      Array.init nsignals (fun i ->
          Calc.class_id_of calc prog.Prog.names.(i))
    in
    let nclasses = Calc.class_count calc in
    let clock_bdd =
      Array.init nclasses (fun c -> Calc.clock_of_class_id calc c)
    in
    let is_input = prog.Prog.is_input in
    let lprims = prog.Prog.prims in
    (* presence sources per class *)
    let pdefs = Array.make nclasses Pfree in
    let mgr = Calc.manager calc in
    for c = 0 to nclasses - 1 do
      let support = Bdd.support mgr clock_bdd.(c) in
      let refers_self =
        List.exists
          (fun v ->
            match Calc.var_kind calc v with
            | Some (`Present c') -> c' = c
            | _ -> false)
          support
      in
      pdefs.(c) <- (if refers_self then Pfree else Pderived)
    done;
    (* stateful primitive outputs override *)
    let stateful_outs lp =
      match lp.Prog.lp_ki.K.ki_prim with
      | Stdproc.Pfifo | Stdproc.Pfifo_reset -> [ 0 ]       (* data *)
      | Stdproc.Pin_event_port -> [ 0 ]                     (* frozen *)
      | Stdproc.Pout_event_port -> [ 0 ]                    (* sent *)
    in
    Array.iteri
      (fun pi lp ->
        List.iter
          (fun pos ->
            pdefs.(class_of.(lp.Prog.lp_outs.(pos))) <- Pprim (pi, pos))
          (stateful_outs lp))
      lprims;
    (* input classes *)
    for i = 0 to nsignals - 1 do
      if is_input.(i) then begin
        let c = class_of.(i) in
        match pdefs.(c) with
        | Pinput members -> pdefs.(c) <- Pinput (i :: members)
        | Pfree -> pdefs.(c) <- Pinput [ i ]
        | Pderived ->
          (* an input whose presence is derived from other clocks: we
             trust the derivation and check the stimulus against it *)
          pdefs.(c) <- Pinput [ i ]
        | Pprim _ ->
          errf "input %s is synchronized with a FIFO-driven clock"
            prog.Prog.names.(i)
      end
    done;
    let n_free =
      Array.fold_left
        (fun acc p -> match p with Pfree -> acc + 1 | _ -> acc)
        0 pdefs
    in
    (* resolve every bdd variable appearing in a clock function once,
       so evaluation never consults a name table *)
    let max_var =
      Array.fold_left
        (fun acc b ->
          List.fold_left max acc (Bdd.support mgr b))
        (-1) clock_bdd
    in
    let bddvars = Array.make (max_var + 1) Rnone in
    Array.iter
      (fun b ->
        List.iter
          (fun v ->
            match Calc.var_kind calc v with
            | Some (`Present c) -> bddvars.(v) <- Rpresent c
            | Some (`Cond bsig) -> bddvars.(v) <- Rcond (index bsig)
            | Some (`CondEq (x, k)) -> bddvars.(v) <- Rcondeq (index x, k)
            | None -> ())
          (Bdd.support mgr b))
      clock_bdd;
    (* dependency graph over presence/value nodes *)
    let g = Analysis.Digraph.create () in
    let pnode c = "P" ^ string_of_int c in
    let vnode i = "V" ^ string_of_int i in
    for c = 0 to nclasses - 1 do
      Analysis.Digraph.add_vertex g (pnode c)
    done;
    for i = 0 to nsignals - 1 do
      Analysis.Digraph.add_vertex g (vnode i);
      (* a value needs its class presence *)
      Analysis.Digraph.add_edge g (pnode class_of.(i)) (vnode i)
    done;
    for c = 0 to nclasses - 1 do
      match pdefs.(c) with
      | Pfree -> ()
      | Pinput _ -> ()
      | Pprim (pi, _) ->
        Array.iter
          (fun i -> Analysis.Digraph.add_edge g (pnode class_of.(i)) (pnode c))
          lprims.(pi).Prog.lp_ins
      | Pderived ->
        List.iter
          (fun v ->
            match bddvars.(v) with
            | Rpresent c' ->
              if c' <> c then Analysis.Digraph.add_edge g (pnode c') (pnode c)
            | Rcond bi ->
              Analysis.Digraph.add_edge g (vnode bi) (pnode c);
              Analysis.Digraph.add_edge g (pnode class_of.(bi)) (pnode c)
            | Rcondeq (xi, _) ->
              Analysis.Digraph.add_edge g (vnode xi) (pnode c);
              Analysis.Digraph.add_edge g (pnode class_of.(xi)) (pnode c)
            | Rnone -> ())
          (Bdd.support mgr clock_bdd.(c))
    done;
    let dep_atom dst = function
      | Prog.Avar y -> Analysis.Digraph.add_edge g (vnode y) (vnode dst)
      | Prog.Aconst _ -> ()
    in
    for i = 0 to nsignals - 1 do
      match prog.Prog.vdefs.(i) with
      | Prog.Vnone | Prog.Vdelay -> ()
      | Prog.Vfunc (_, args) -> Array.iter (dep_atom i) args
      | Prog.Vwhen src -> dep_atom i src
      | Prog.Vdefault (l, r) ->
        dep_atom i l;
        dep_atom i r;
        (match l with
         | Prog.Avar y ->
           Analysis.Digraph.add_edge g (pnode class_of.(y)) (vnode i)
         | Prog.Aconst _ -> ());
        (match r with
         | Prog.Avar y ->
           Analysis.Digraph.add_edge g (pnode class_of.(y)) (vnode i)
         | Prog.Aconst _ -> ())
      | Prog.Vprim (pi, _) ->
        Array.iter
          (fun j ->
            Analysis.Digraph.add_edge g (vnode j) (vnode i);
            Analysis.Digraph.add_edge g (pnode class_of.(j)) (vnode i))
          lprims.(pi).Prog.lp_ins
    done;
    let order =
      match Analysis.Digraph.topological_sort g with
      | Ok order -> order
      | Error cycle ->
        errf "causality cycle prevents compilation: %s"
          (String.concat " -> " cycle)
    in
    let plan =
      Array.of_list
        (List.map
           (fun node ->
             let k = int_of_string (String.sub node 1 (String.length node - 1)) in
             if node.[0] = 'P' then Opres k else Oval k)
           order)
    in
    Ok
      { p_prog = prog; p_calc = calc; p_class_of = class_of;
        p_nclasses = nclasses; p_pdefs = pdefs; p_clock_bdd = clock_bdd;
        p_bddvars = bddvars; p_plan = plan; p_n_free = n_free }
  with
  | Comp_error m -> Error m
  | Prog.Lower_error m -> Error m
  | Invalid_argument m -> Error m

(* a fresh mutable instance over a (possibly shared) plan *)
let instantiate pl =
  let prog = pl.p_prog in
  { prog;
    calc = pl.p_calc;
    class_of = pl.p_class_of;
    nclasses = pl.p_nclasses;
    pdefs = pl.p_pdefs;
    clock_bdd = pl.p_clock_bdd;
    bddvars = pl.p_bddvars;
    plan = pl.p_plan;
    n_free = pl.p_n_free;
    prims =
      Array.map
        (fun lp -> { lp; queue = Queue.create (); overflows = 0 })
        prog.Prog.prims;
    dstate = Array.copy prog.Prog.delay_init;
    pres = Array.make (max pl.p_nclasses 1) false;
    vals = Array.make (max prog.Prog.n 1) None;
    stim_present = Array.make (max prog.Prog.n 1) false;
    tr = Trace.create (Prog.decls prog);
    instants = 0;
    recording = true }

let record_plan_metrics pl =
  let mgr = Calc.manager pl.p_calc in
  Metrics.set m_plan_ops (Array.length pl.p_plan);
  Metrics.set m_bdd_nodes (Bdd.node_count mgr);
  let calls, hits = Bdd.apply_stats mgr in
  Metrics.set m_bdd_apply_calls calls;
  Metrics.set m_bdd_apply_hit_pct
    (if calls = 0 then 0 else 100 * hits / calls);
  Metrics.set m_free_classes pl.p_n_free

(* Plans are memoized on the kernel digest (compile errors too — they
   are just as deterministic). The mutex makes the memo safe from the
   explorer's worker domains and prevents two domains from building
   one plan twice; cold builds are serialized, which is irrelevant
   next to their cost being paid once. *)
let plan_cache : (string, (plan, string) result) Hashtbl.t = Hashtbl.create 64
let plan_lock = Mutex.create ()
let plan_cache_cap = 256

let plan_of kp =
  let dg = K.digest kp in
  Mutex.protect plan_lock @@ fun () ->
  match Hashtbl.find_opt plan_cache dg with
  | Some r -> Metrics.incr m_cache_hits; r
  | None ->
    Metrics.incr m_cache_misses;
    Metrics.incr m_plan_builds;
    let r =
      Putil.Tracing.with_span "compile.plan"
        ~args:[ ("signals", Putil.Tracing.Aint (K.st_count (K.sigtab kp))) ]
      @@ fun () ->
      Metrics.time m_compile_ns (fun () -> compile_impl kp)
    in
    (match r with Ok pl -> record_plan_metrics pl | Error _ -> ());
    if Hashtbl.length plan_cache >= plan_cache_cap then
      Hashtbl.reset plan_cache;
    Hashtbl.add plan_cache dg r;
    r

let compile kp =
  Metrics.incr m_compilations;
  Result.map instantiate (plan_of kp)

let compile_uncached kp =
  Metrics.incr m_compilations;
  Metrics.incr m_plan_builds;
  let r = Metrics.time m_compile_ns (fun () -> compile_impl kp) in
  (match r with Ok pl -> record_plan_metrics pl | Error _ -> ());
  Result.map instantiate r

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let value_of st i =
  match st.vals.(i) with
  | Some v -> v
  | None -> errf "instant %d: signal %s used before being computed"
              st.instants st.prog.Prog.names.(i)

let atom_value st = function
  | Prog.Aconst v -> v
  | Prog.Avar y -> value_of st y

(* primitive output presence/value from state + input facts *)
let prim_presence st p pos =
  let ins = p.lp.Prog.lp_ins in
  let pres_in k = st.pres.(st.class_of.(ins.(k))) in
  match p.lp.Prog.lp_ki.K.ki_prim with
  | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
    (* data: pop present and an item available *)
    let has_reset = Array.length ins = 3 in
    let reset_p = has_reset && pres_in 2 in
    let push_p = pres_in 0 and pop_p = pres_in 1 in
    let qlen0 = if reset_p then 0 else Queue.length p.queue in
    (match pos with
     | 0 -> pop_p && qlen0 + (if push_p then 1 else 0) > 0
     | _ -> assert false)
  | Stdproc.Pin_event_port -> (
    let ft_p = pres_in 1 in
    match pos with
    | 0 -> ft_p && not (Queue.is_empty p.queue)
    | _ -> assert false)
  | Stdproc.Pout_event_port -> (
    let item_p = pres_in 0 and ot_p = pres_in 1 in
    match pos with
    | 0 -> ot_p && (item_p || not (Queue.is_empty p.queue))
    | _ -> assert false)

let prim_value st p pos =
  let ins = p.lp.Prog.lp_ins in
  let pres_in k = st.pres.(st.class_of.(ins.(k))) in
  let val_in k = value_of st ins.(k) in
  match p.lp.Prog.lp_ki.K.ki_prim with
  | Stdproc.Pfifo | Stdproc.Pfifo_reset -> (
    let has_reset = Array.length ins = 3 in
    let reset_p = has_reset && pres_in 2 in
    let push_p = pres_in 0 and pop_p = pres_in 1 in
    let qlen0 = if reset_p then 0 else Queue.length p.queue in
    match pos with
    | 0 ->
      (* data: oldest available item *)
      if qlen0 > 0 then Queue.peek p.queue else val_in 0
    | 1 ->
      let n1 =
        if push_p then min (qlen0 + 1) p.lp.Prog.lp_capacity else qlen0
      in
      Types.Vint (if pop_p && n1 > 0 then n1 - 1 else n1)
    | _ -> assert false)
  | Stdproc.Pin_event_port -> (
    match pos with
    | 0 -> Queue.peek p.queue
    | 1 -> Types.Vint (Queue.length p.queue)
    | _ -> assert false)
  | Stdproc.Pout_event_port -> (
    match pos with
    | 0 -> if Queue.is_empty p.queue then value_of st ins.(0)
           else Queue.peek p.queue
    | _ -> assert false)

let bdd_env st v =
  if v >= Array.length st.bddvars then false
  else
    match st.bddvars.(v) with
    | Rpresent c -> st.pres.(c)
    | Rcond bi -> (
      st.pres.(st.class_of.(bi))
      &&
      match st.vals.(bi) with
      | Some value -> Eval.as_bool value
      | None -> false)
    | Rcondeq (xi, k) -> (
      st.pres.(st.class_of.(xi))
      &&
      match st.vals.(xi) with
      | Some (Types.Vint n) -> n = k
      | Some _ | None -> false)
    | Rnone -> false

let exec_pres st c =
  match st.pdefs.(c) with
  | Pfree -> st.pres.(c) <- false
  | Pinput members ->
    let p = List.exists (fun i -> st.stim_present.(i)) members in
    List.iter
      (fun i ->
        if st.stim_present.(i) <> p then
          errf "instant %d: synchronous inputs %s disagree on presence"
            st.instants st.prog.Prog.names.(i))
      members;
    st.pres.(c) <- p
  | Pprim (pi, pos) -> st.pres.(c) <- prim_presence st st.prims.(pi) pos
  | Pderived ->
    st.pres.(c) <-
      Bdd.eval (Calc.manager st.calc) (bdd_env st) st.clock_bdd.(c)

let exec_val st i =
  if st.pres.(st.class_of.(i)) then
    match st.prog.Prog.vdefs.(i) with
    | Prog.Vnone ->
      if st.vals.(i) = None then
        errf "instant %d: present signal %s has no value (missing input?)"
          st.instants st.prog.Prog.names.(i)
    | Prog.Vfunc (op, args) ->
      st.vals.(i) <-
        Some (Eval.eval_func op (Array.to_list (Array.map (atom_value st) args)))
    | Prog.Vdelay -> st.vals.(i) <- Some st.dstate.(i)
    | Prog.Vwhen src -> st.vals.(i) <- Some (atom_value st src)
    | Prog.Vdefault (l, r) ->
      let branch =
        match l with
        | Prog.Aconst v -> v
        | Prog.Avar y ->
          if st.pres.(st.class_of.(y)) then value_of st y
          else (
            match r with
            | Prog.Aconst v -> v
            | Prog.Avar z ->
              if st.pres.(st.class_of.(z)) then value_of st z
              else
                errf "instant %d: merge %s present with both branches absent"
                  st.instants st.prog.Prog.names.(i))
      in
      st.vals.(i) <- Some branch
    | Prog.Vprim (pi, pos) ->
      st.vals.(i) <- Some (prim_value st st.prims.(pi) pos)

let push_bounded p v =
  if Queue.length p.queue >= p.lp.Prog.lp_capacity then begin
    p.overflows <- p.overflows + 1;
    match p.lp.Prog.lp_policy with
    | Prog.Drop_oldest ->
      ignore (Queue.pop p.queue);
      Queue.push v p.queue
    | Prog.Drop_newest -> ()
    | Prog.Overflow_error ->
      errf "queue overflow on %s (Overflow_Handling_Protocol => Error)"
        p.lp.Prog.lp_ki.K.ki_label
  end
  else Queue.push v p.queue

let commit_prim st p =
  let ins = p.lp.Prog.lp_ins in
  let pres_in k = st.pres.(st.class_of.(ins.(k))) in
  let val_in k = value_of st ins.(k) in
  match p.lp.Prog.lp_ki.K.ki_prim with
  | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
    let has_reset = Array.length ins = 3 in
    if has_reset && pres_in 2 then Queue.clear p.queue;
    if pres_in 0 then push_bounded p (val_in 0);
    if pres_in 1 && not (Queue.is_empty p.queue) then
      ignore (Queue.pop p.queue)
  | Stdproc.Pin_event_port ->
    if pres_in 1 then Queue.clear p.queue;
    (* NOTE: the engine moves in_fifo to frozen_fifo; since [frozen]
       only ever exposes the head at Frozen_time, dropping the old
       frozen content and re-freezing is equivalent observably; the
       in_fifo is cleared after a freeze, matching Engine.commit. *)
    if pres_in 0 then push_bounded p (val_in 0)
  | Stdproc.Pout_event_port ->
    if pres_in 0 then push_bounded p (val_in 0);
    if pres_in 1 && not (Queue.is_empty p.queue) then
      ignore (Queue.pop p.queue)

let step st ~stimulus =
  Metrics.time m_step_ns @@ fun () ->
  try
    let prog = st.prog in
    let nsignals = prog.Prog.n in
    Array.fill st.pres 0 (Array.length st.pres) false;
    Array.fill st.vals 0 (Array.length st.vals) None;
    Array.fill st.stim_present 0 (Array.length st.stim_present) false;
    List.iter
      (fun (x, v) ->
        match Prog.index_opt prog x with
        | Some i when prog.Prog.is_input.(i) ->
          st.stim_present.(i) <- true;
          st.vals.(i) <- Some v
        | Some _ -> errf "stimulus for non-input signal %s" x
        | None -> errf "stimulus for unknown signal %s" x)
      stimulus;
    Array.iter
      (fun op ->
        match op with
        | Opres c -> exec_pres st c
        | Oval i -> exec_val st i)
      st.plan;
    (* sanity: inputs marked present must be in present classes *)
    for i = 0 to nsignals - 1 do
      if st.stim_present.(i) && not (st.pres.(st.class_of.(i))) then
        errf "instant %d: input %s present against its derived clock"
          st.instants prog.Prog.names.(i)
    done;
    let row = ref [] and present = ref [] in
    for i = nsignals - 1 downto 0 do
      if st.pres.(st.class_of.(i)) then
        match st.vals.(i) with
        | Some v ->
          row := (i, v) :: !row;
          present := (prog.Prog.names.(i), v) :: !present
        | None ->
          errf "instant %d: signal %s present without a value" st.instants
            prog.Prog.names.(i)
    done;
    (* commit *)
    for i = 0 to nsignals - 1 do
      let src = prog.Prog.delay_src.(i) in
      if src >= 0 && st.pres.(st.class_of.(src)) then
        st.dstate.(i) <- value_of st src
    done;
    Array.iter (fun p -> commit_prim st p) st.prims;
    if st.recording then Trace.push_row st.tr (Array.of_list !row);
    st.instants <- st.instants + 1;
    Metrics.incr m_instants;
    Ok !present
  with
  | Comp_error m -> Error m
  | Eval.Eval_error m -> Error (Printf.sprintf "instant %d: %s" st.instants m)

let run kp ~stimuli =
  match compile kp with
  | Error m -> Error m
  | Ok st ->
    let rec go = function
      | [] -> Ok st.tr
      | stim :: rest -> (
        match step st ~stimulus:stim with
        | Ok _ -> go rest
        | Error m -> Error m)
    in
    go stimuli

let trace st = st.tr
let instant st = st.instants

type snapshot = {
  s_dstate : Types.value array;
  s_queues : Types.value list array;
  s_instants : int;
}

let snapshot st =
  { s_dstate = Array.copy st.dstate;
    s_queues =
      Array.map
        (fun p -> List.of_seq (Queue.to_seq p.queue))
        st.prims;
    s_instants = st.instants }

let restore st snap =
  Array.blit snap.s_dstate 0 st.dstate 0 (Array.length st.dstate);
  Array.iteri
    (fun i p ->
      Queue.clear p.queue;
      List.iter (fun v -> Queue.push v p.queue) snap.s_queues.(i))
    st.prims;
  st.instants <- snap.s_instants

let set_recording st b = st.recording <- b

let state_digest st =
  let queues =
    Array.map (fun p -> List.of_seq (Queue.to_seq p.queue)) st.prims
  in
  Marshal.to_string (st.dstate, queues) []
let plan_length st = Array.length st.plan
let free_classes st = st.n_free

let free_class_members st =
  let acc = ref [] in
  for i = st.prog.Prog.n - 1 downto 0 do
    match st.pdefs.(st.class_of.(i)) with
    | Pfree -> acc := st.prog.Prog.names.(i) :: !acc
    | Pinput _ | Pprim _ | Pderived -> ()
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* C code generation (the Polychrony back-end pillar, ref [15]):       *)
(* compile the execution plan to a self-contained C program.           *)
(* ------------------------------------------------------------------ *)

let styp_of st i = st.prog.Prog.types.(i)

let to_c ?(name = "signal_step") st =
  let buf = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let prog = st.prog in
  let nsignals = prog.Prog.n in
  let names = prog.Prog.names in
  let is_real i = styp_of st i = Types.Treal in
  (* reject string-typed signals: no C mapping *)
  let has_string =
    Array.exists (fun ty -> ty = Types.Tstring) prog.Prog.types
  in
  if has_string then Error "string signals have no C mapping"
  else begin
    let v i = Printf.sprintf "v_%d" i in
    let p c = Printf.sprintf "p_%d" c in
    let inputs = prog.Prog.inputs in
    let input_index =
      let h = Hashtbl.create 8 in
      Array.iteri (fun k i -> Hashtbl.replace h i k) inputs;
      h
    in
    pf "/* generated by polychrony-aadl from process %s */\n"
      prog.Prog.kp.K.kname;
    pf "#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n\n";
    pf "static long sdiv(long a, long b){ if(!b){fprintf(stderr,\"division by zero\\n\");exit(2);} return a/b; }\n";
    pf "static long smod(long a, long b){ if(!b){fprintf(stderr,\"modulo by zero\\n\");exit(2);} return a%%b; }\n\n";
    (* signal storage *)
    for i = 0 to nsignals - 1 do
      if is_real i then pf "static double %s; /* %s */\n" (v i) names.(i)
      else pf "static long %s; /* %s */\n" (v i) names.(i)
    done;
    for c = 0 to st.nclasses - 1 do
      pf "static int %s;\n" (p c)
    done;
    (* delay state *)
    for i = 0 to nsignals - 1 do
      if prog.Prog.delay_src.(i) >= 0 then begin
        match st.dstate.(i) with
        | Types.Vreal r -> pf "static double d_%d = %.17g;\n" i r
        | Types.Vint n -> pf "static long d_%d = %d;\n" i n
        | Types.Vbool b -> pf "static long d_%d = %d;\n" i (if b then 1 else 0)
        | Types.Vevent -> pf "static long d_%d = 1;\n" i
        | Types.Vstring _ -> ()
      end
    done;
    (* primitive queues *)
    Array.iteri
      (fun k pr ->
        pf "static long q%d_buf[%d]; static int q%d_len = 0, q%d_head = 0;\n"
          k pr.lp.Prog.lp_capacity k k)
      st.prims;
    pf "\nstatic void qpush(long*buf,int cap,int*len,int*head,int policy,long x){\n";
    pf "  if(*len >= cap){\n";
    pf "    if(policy==0){ buf[*head]= 0; *head=(*head+1)%%cap; (*len)--; }\n";
    pf "    else if(policy==1){ return; }\n";
    pf "    else { fprintf(stderr,\"queue overflow\\n\"); exit(3); }\n";
    pf "  }\n";
    pf "  buf[(*head + *len) %% cap] = x; (*len)++;\n}\n";
    pf "static long qpeek(long*buf,int cap,int head){ (void)cap; return buf[head]; }\n";
    pf "static void qpop(int cap,int*len,int*head){ if(*len>0){ *head=(*head+1)%%cap; (*len)--; } }\n\n";
    (* input buffers *)
    let ni = Array.length inputs in
    pf "static int in_p[%d]; static double in_raw[%d];\n\n" (max ni 1) (max ni 1);
    (* BDD compilation *)
    let mgr = Calc.manager st.calc in
    let rec bdd_expr b =
      match Bdd.view mgr b with
      | `Leaf true -> "1"
      | `Leaf false -> "0"
      | `Node (var, lo, hi) ->
        let cond =
          match
            (if var < Array.length st.bddvars then st.bddvars.(var) else Rnone)
          with
          | Rpresent c -> p c
          | Rcond bi ->
            Printf.sprintf "(%s && %s)" (p st.class_of.(bi)) (v bi)
          | Rcondeq (xi, k) ->
            Printf.sprintf "(%s && %s == %d)" (p st.class_of.(xi)) (v xi) k
          | Rnone -> "0"
        in
        Printf.sprintf "(%s ? %s : %s)" cond (bdd_expr hi) (bdd_expr lo)
    in
    let atom_expr = function
      | Prog.Avar y -> v y
      | Prog.Aconst (Types.Vint n) -> string_of_int n
      | Prog.Aconst (Types.Vbool b) -> if b then "1" else "0"
      | Prog.Aconst Types.Vevent -> "1"
      | Prog.Aconst (Types.Vreal r) -> Printf.sprintf "%.17g" r
      | Prog.Aconst (Types.Vstring _) -> "0"
    in
    let prim_id pr st =
      let rec go k = if st.prims.(k) == pr then k else go (k + 1) in
      go 0
    in
    let prim_pres_expr pr pos =
      let ins = pr.lp.Prog.lp_ins in
      let pin k = p st.class_of.(ins.(k)) in
      match pr.lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        let k = prim_id pr st in
        Printf.sprintf
          "(%s && ((%s ? 0 : q%d_len) + (%s ? 1 : 0) > 0))"
          (pin 1)
          (if has_reset then pin 2 else "0")
          k (pin 0)
      | Stdproc.Pin_event_port, 0 ->
        Printf.sprintf "(%s && q%d_len > 0)" (pin 1) (prim_id pr st)
      | Stdproc.Pout_event_port, 0 ->
        Printf.sprintf "(%s && (%s || q%d_len > 0))" (pin 1) (pin 0)
          (prim_id pr st)
      | _ -> "0"
    in
    let prim_val_expr pr pos =
      let ins = pr.lp.Prog.lp_ins in
      let cap = pr.lp.Prog.lp_capacity in
      let pin k = p st.class_of.(ins.(k)) in
      let vin k = v ins.(k) in
      let k = prim_id pr st in
      match pr.lp.Prog.lp_ki.K.ki_prim, pos with
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 0 ->
        let has_reset = Array.length ins = 3 in
        Printf.sprintf
          "(((%s ? 0 : q%d_len) > 0) ? qpeek(q%d_buf,%d,q%d_head) : %s)"
          (if has_reset then pin 2 else "0")
          k k cap k (vin 0)
      | (Stdproc.Pfifo | Stdproc.Pfifo_reset), 1 ->
        let has_reset = Array.length ins = 3 in
        let n0 =
          Printf.sprintf "(%s ? 0 : q%d_len)"
            (if has_reset then pin 2 else "0") k
        in
        let n1 =
          Printf.sprintf
            "(%s ? ((%s + 1) < %d ? (%s + 1) : %d) : %s)"
            (pin 0) n0 cap n0 cap n0
        in
        Printf.sprintf "((%s && %s > 0) ? %s - 1 : %s)" (pin 1) n1 n1 n1
      | Stdproc.Pin_event_port, 0 ->
        Printf.sprintf "qpeek(q%d_buf,%d,q%d_head)" k cap k
      | Stdproc.Pin_event_port, 1 -> Printf.sprintf "(long)q%d_len" k
      | Stdproc.Pout_event_port, 0 ->
        Printf.sprintf "(q%d_len > 0 ? qpeek(q%d_buf,%d,q%d_head) : %s)"
          k k cap k (vin 0)
      | _ -> "0"
    in
    (* step function *)
    pf "static void step(void){\n";
    Array.iter
      (fun op ->
        match op with
        | Opres c -> (
          match st.pdefs.(c) with
          | Pfree -> pf "  %s = 0;\n" (p c)
          | Pinput members ->
            let flags =
              List.map
                (fun i ->
                  Printf.sprintf "in_p[%d]" (Hashtbl.find input_index i))
                members
            in
            pf "  %s = %s;\n" (p c) (String.concat " || " flags)
          | Pprim (pi, pos) ->
            pf "  %s = %s;\n" (p c) (prim_pres_expr st.prims.(pi) pos)
          | Pderived -> pf "  %s = %s;\n" (p c) (bdd_expr st.clock_bdd.(c)))
        | Oval i ->
          let guard = p st.class_of.(i) in
          (match prog.Prog.vdefs.(i) with
           | Prog.Vnone ->
             if prog.Prog.is_input.(i) then begin
               let k = Hashtbl.find input_index i in
               if is_real i then
                 pf "  if (%s) %s = in_raw[%d];\n" guard (v i) k
               else pf "  if (%s) %s = (long)in_raw[%d];\n" guard (v i) k
             end
           | Prog.Vfunc (op, args) ->
             let e =
               match op, Array.to_list args with
               | K.Pid, [ a ] -> atom_expr a
               | K.Pclock, [ _ ] -> "1"
               | K.Punop Ast.Not, [ a ] ->
                 Printf.sprintf "(!%s)" (atom_expr a)
               | K.Punop Ast.Neg, [ a ] ->
                 Printf.sprintf "(-%s)" (atom_expr a)
               | K.Pif, [ c0; t; f ] ->
                 Printf.sprintf "(%s ? %s : %s)" (atom_expr c0) (atom_expr t)
                   (atom_expr f)
               | K.Pbinop bop, [ a; b ] ->
                 let x = atom_expr a and y = atom_expr b in
                 (match bop with
                  | Ast.Add -> Printf.sprintf "(%s + %s)" x y
                  | Ast.Sub -> Printf.sprintf "(%s - %s)" x y
                  | Ast.Mul -> Printf.sprintf "(%s * %s)" x y
                  | Ast.Div ->
                    if is_real i then Printf.sprintf "(%s / %s)" x y
                    else Printf.sprintf "sdiv(%s, %s)" x y
                  | Ast.Mod -> Printf.sprintf "smod(%s, %s)" x y
                  | Ast.And -> Printf.sprintf "(%s && %s)" x y
                  | Ast.Or -> Printf.sprintf "(%s || %s)" x y
                  | Ast.Xor -> Printf.sprintf "(!!%s != !!%s)" x y
                  | Ast.Eq -> Printf.sprintf "(%s == %s)" x y
                  | Ast.Neq -> Printf.sprintf "(%s != %s)" x y
                  | Ast.Lt -> Printf.sprintf "(%s < %s)" x y
                  | Ast.Le -> Printf.sprintf "(%s <= %s)" x y
                  | Ast.Gt -> Printf.sprintf "(%s > %s)" x y
                  | Ast.Ge -> Printf.sprintf "(%s >= %s)" x y)
               | _, _ -> "0"
             in
             pf "  if (%s) %s = %s;\n" guard (v i) e
           | Prog.Vdelay -> pf "  if (%s) %s = d_%d;\n" guard (v i) i
           | Prog.Vwhen src ->
             pf "  if (%s) %s = %s;\n" guard (v i) (atom_expr src)
           | Prog.Vdefault (l, r) ->
             let rhs =
               match l, r with
               | Prog.Aconst _, _ -> atom_expr l
               | Prog.Avar y, Prog.Aconst _ ->
                 Printf.sprintf "(%s ? %s : %s)" (p st.class_of.(y)) (v y)
                   (atom_expr r)
               | Prog.Avar y, Prog.Avar z ->
                 Printf.sprintf "(%s ? %s : %s)" (p st.class_of.(y)) (v y)
                   (v z)
             in
             pf "  if (%s) %s = %s;\n" guard (v i) rhs
           | Prog.Vprim (pi, pos) ->
             pf "  if (%s) %s = %s;\n" guard (v i)
               (prim_val_expr st.prims.(pi) pos)))
      st.plan;
    (* commit: delays then queues *)
    for i = 0 to nsignals - 1 do
      let src = prog.Prog.delay_src.(i) in
      if src >= 0 then
        pf "  if (%s) d_%d = %s;\n" (p st.class_of.(src)) i (v src)
    done;
    Array.iteri
      (fun k pr ->
        let ins = pr.lp.Prog.lp_ins in
        let cap = pr.lp.Prog.lp_capacity in
        let pin j = p st.class_of.(ins.(j)) in
        let vin j = v ins.(j) in
        let policy =
          match pr.lp.Prog.lp_policy with
          | Prog.Drop_oldest -> 0
          | Prog.Drop_newest -> 1
          | Prog.Overflow_error -> 2
        in
        match pr.lp.Prog.lp_ki.K.ki_prim with
        | Stdproc.Pfifo | Stdproc.Pfifo_reset ->
          if Array.length ins = 3 then
            pf "  if (%s) { q%d_len = 0; q%d_head = 0; }\n" (pin 2) k k;
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0);
          pf "  if (%s) qpop(%d,&q%d_len,&q%d_head);\n" (pin 1) cap k k
        | Stdproc.Pin_event_port ->
          pf "  if (%s) { q%d_len = 0; q%d_head = 0; }\n" (pin 1) k k;
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0)
        | Stdproc.Pout_event_port ->
          pf "  if (%s) qpush(q%d_buf,%d,&q%d_len,&q%d_head,%d,(long)%s);\n"
            (pin 0) k cap k k policy (vin 0);
          pf "  if (%s) qpop(%d,&q%d_len,&q%d_head);\n" (pin 1) cap k k)
      st.prims;
    pf "}\n\n";
    (* main: read stimuli lines, run, print present signals *)
    pf "int main(void){\n";
    pf "  char line[1 << 16];\n";
    pf "  while (fgets(line, sizeof line, stdin)) {\n";
    pf "    char *tok = strtok(line, \" \\t\\r\\n\");\n";
    pf "    for (int k = 0; k < %d; k++) {\n" ni;
    pf "      if (!tok || (tok[0]=='-' && tok[1]==0)) { in_p[k]=0; in_raw[k]=0; }\n";
    pf "      else { in_p[k]=1; in_raw[k]=strtod(tok, 0); }\n";
    pf "      if (tok) tok = strtok(0, \" \\t\\r\\n\");\n";
    pf "    }\n";
    pf "    step();\n";
    for i = 0 to nsignals - 1 do
      if is_real i then
        pf "    if (%s) printf(\"%s=%%.17g \", %s);\n" (p st.class_of.(i))
          names.(i) (v i)
      else
        pf "    if (%s) printf(\"%s=%%ld \", %s);\n" (p st.class_of.(i))
          names.(i) (v i)
    done;
    pf "    printf(\"\\n\");\n";
    pf "  }\n  return 0;\n}\n";
    ignore name;
    Metrics.set m_codegen_bytes (Buffer.length buf);
    Ok (Buffer.contents buf)
  end
