(** Minimal VCD reader, used to self-validate {!Vcd} output: the trace
    written as VCD and read back must contain the same value changes.
    Handles the subset {!Vcd} emits (scalar wires, 32-bit vectors,
    reals, strings; [x] / [bx] / [rx] / [sx] as absence). String values
    are percent-decoded, reversing the writer's escaping, so strings
    with whitespace round-trip unchanged. *)

type change = {
  c_time : int;
  c_code : string;                       (** VCD identifier code *)
  c_value : Signal_lang.Types.value option;  (** [None] = x / absent *)
}

type t = {
  timescale : string;
  vars : (string * string) list;  (** (code, declared name) *)
  changes : change list;          (** chronological *)
}

val parse : string -> (t, string) result

val value_at :
  t -> name:string -> time:int -> Signal_lang.Types.value option
(** Last change at or before [time] for the named wire; [None] when
    absent ([x]) or never driven. Integer wires yield [Vint], 1-bit
    wires [Vbool]. *)
