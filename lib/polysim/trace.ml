module Ast = Signal_lang.Ast
module Types = Signal_lang.Types
module Symbol = Putil.Symbol

(* Steps live in a growable array so random access is O(1); traces of
   hundreds of thousands of instants appear in the benches.

   Rows are recorded against dense signal indices (declaration order),
   not names: the simulators push int-indexed rows straight from their
   per-instant arrays and names are only materialized by the printing
   and dumping layers. Each row is sorted by index, so point lookups
   are a binary search over the present signals of that instant. *)

type row = (int * Types.value) array

type t = {
  decls : Ast.bare Ast.gvardecl array;  (* mark-stripped: any phase in *)
  names : string array;
  lookup : int Symbol.Tbl.t;        (* symbol -> index, -1 *)
  mutable steps : row array;
  mutable len : int;
}

let empty_row : row = [||]

let strip_vardecl vd =
  { Ast.var_name = vd.Ast.var_name; var_type = vd.Ast.var_type;
    var_mark = Ast.Mbare }

let create decl_list =
  let decls = Array.of_list (List.map strip_vardecl decl_list) in
  let names = Array.map (fun vd -> vd.Ast.var_name) decls in
  let lookup = Symbol.Tbl.create ~size:(Array.length decls) (-1) in
  Array.iteri
    (fun i name -> Symbol.Tbl.set lookup (Symbol.of_string name) i)
    names;
  { decls; names; lookup; steps = Array.make 16 empty_row; len = 0 }

let declarations t = Array.to_list t.decls

let index_of t x =
  let i = Symbol.Tbl.get t.lookup (Symbol.of_string x) in
  if i >= 0 then Some i else None

let name_of t i = t.names.(i)

let push_row t row =
  if t.len >= Array.length t.steps then begin
    let bigger = Array.make (2 * Array.length t.steps) empty_row in
    Array.blit t.steps 0 bigger 0 t.len;
    t.steps <- bigger
  end;
  t.steps.(t.len) <- row;
  t.len <- t.len + 1

let push t present =
  (* compat path: resolve names and dedupe (last occurrence wins, as
     the previous hashtable representation did) *)
  let n = Array.length t.decls in
  let tmp = Array.make n None in
  List.iter
    (fun (x, v) ->
      match index_of t x with
      | Some i -> tmp.(i) <- Some v
      | None -> ())
    present;
  let count =
    Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 tmp
  in
  let row = Array.make count (0, Types.Vint 0) in
  let k = ref 0 in
  Array.iteri
    (fun i o ->
      match o with
      | Some v ->
        row.(!k) <- (i, v);
        incr k
      | None -> ())
    tmp;
  push_row t row

let length t = t.len

let row_find (row : row) i =
  let lo = ref 0 and hi = ref (Array.length row - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let j, v = row.(mid) in
    if j = i then begin
      found := Some v;
      lo := !hi + 1
    end
    else if j < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let step_row t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: instant out of range";
  t.steps.(i)

let get_idx t i x = row_find (step_row t i) x

let get t i x =
  match index_of t x with
  | Some xi -> get_idx t i xi
  | None -> None

let present_count t x =
  match index_of t x with
  | None -> 0
  | Some xi ->
    let n = ref 0 in
    for i = 0 to t.len - 1 do
      if row_find t.steps.(i) xi <> None then incr n
    done;
    !n

let values_of t x =
  match index_of t x with
  | None -> []
  | Some xi ->
    let acc = ref [] in
    for i = t.len - 1 downto 0 do
      match row_find t.steps.(i) xi with
      | Some v -> acc := v :: !acc
      | None -> ()
    done;
    !acc

let tick_instants t x =
  match index_of t x with
  | None -> []
  | Some xi ->
    let acc = ref [] in
    for i = t.len - 1 downto 0 do
      if row_find t.steps.(i) xi <> None then acc := i :: !acc
    done;
    !acc

let equal a b =
  a.len = b.len
  && Array.length a.names = Array.length b.names
  && (let ok = ref true in
      Array.iteri (fun i n -> if n <> b.names.(i) then ok := false) a.names;
      !ok)
  &&
  let rows_ok = ref true in
  (try
     for i = 0 to a.len - 1 do
       let ra = a.steps.(i) and rb = b.steps.(i) in
       if Array.length ra <> Array.length rb then raise Exit;
       Array.iteri
         (fun k (ja, va) ->
           let jb, vb = rb.(k) in
           if ja <> jb || not (Types.equal_value va vb) then raise Exit)
         ra
     done
   with Exit -> rows_ok := false);
  !rows_ok

let is_temp name =
  String.length name > 0
  && (name.[0] = '_'
      ||
      let rec has_dunder i =
        i + 1 < String.length name
        && ((name.[i] = '_' && name.[i + 1] = '_') || has_dunder (i + 1))
      in
      has_dunder 0)

let observable t =
  List.filter_map
    (fun vd ->
      if is_temp vd.Ast.var_name then None else Some vd.Ast.var_name)
    (declarations t)

let cell_of_value = function
  | Types.Vevent -> "!"
  | Types.Vbool true -> "T"
  | Types.Vbool false -> "F"
  | Types.Vint n -> string_of_int n
  | Types.Vreal r -> Printf.sprintf "%g" r
  | Types.Vstring s -> s

let chronogram ?signals ?(from_instant = 0) ?until_instant ppf t =
  let names = match signals with Some l -> l | None -> observable t in
  let hi = Option.value ~default:t.len until_instant in
  let hi = min hi t.len in
  let lo = max 0 from_instant in
  let width = ref 1 in
  let cells =
    List.map
      (fun x ->
        let row =
          List.init (hi - lo) (fun k ->
              match get t (lo + k) x with
              | None -> "."
              | Some v -> cell_of_value v)
        in
        List.iter (fun c -> width := max !width (String.length c)) row;
        (x, row))
      names
  in
  let name_w =
    List.fold_left (fun acc (x, _) -> max acc (String.length x)) 0 cells
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let lpad w s = String.make (max 0 (w - String.length s)) ' ' ^ s in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (x, row) ->
      Format.fprintf ppf "%s |" (pad name_w x);
      List.iter (fun c -> Format.fprintf ppf " %s" (lpad !width c)) row;
      Format.fprintf ppf "@,")
    cells;
  Format.fprintf ppf "@]"
