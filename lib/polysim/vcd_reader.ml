module Types = Signal_lang.Types

type change = {
  c_time : int;
  c_code : string;
  c_value : Types.value option;
}

type t = {
  timescale : string;
  vars : (string * string) list;
  changes : change list;
}

(* reverse of Vcd.escape_string: %HH percent-decoding *)
let unescape_string s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then (
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char buf s.[i];
          go (i + 1))
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let parse src =
  let lines = String.split_on_char '\n' src in
  let timescale = ref "" in
  let vars = ref [] in
  let changes = ref [] in
  let time = ref 0 in
  let error = ref None in
  let fail m = if !error = None then error := Some m in
  (* header sections whose body spans several lines ($date, $version,
     $comment) are skipped until their $end; $dumpvars bodies are value
     changes and are parsed *)
  let skipping = ref false in
  let int_of_bits bits =
    (* bits may be "x" *)
    if String.contains bits 'x' then None
    else
      Some
        (String.fold_left
           (fun acc c -> (acc * 2) + (if c = '1' then 1 else 0))
           0 bits)
  in
  let contains_end line =
    let needle = "$end" in
    let nh = String.length line and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub line i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if !skipping then begin
        if contains_end line then skipping := false
      end
      else if
        (String.length line >= 5 && String.sub line 0 5 = "$date")
        || (String.length line >= 8 && String.sub line 0 8 = "$version")
        || (String.length line >= 8 && String.sub line 0 8 = "$comment")
      then (if not (contains_end line) then skipping := true)
      else if String.length line >= 10 && String.sub line 0 10 = "$timescale"
      then
        timescale :=
          String.trim
            (String.concat " "
               (List.filter
                  (fun w -> w <> "$timescale" && w <> "$end")
                  (String.split_on_char ' ' line)))
      else if String.length line >= 4 && String.sub line 0 4 = "$var" then begin
        match String.split_on_char ' ' line with
        | "$var" :: _kind :: _width :: code :: name :: _ ->
          vars := (code, name) :: !vars
        | _ -> fail ("malformed $var: " ^ line)
      end
      else if line.[0] = '$' then ()  (* other sections *)
      else if line.[0] = '#' then (
        match int_of_string_opt (String.sub line 1 (String.length line - 1)) with
        | Some t -> time := t
        | None -> fail ("malformed timestamp: " ^ line))
      else if line.[0] = 'b' then (
        (* vector: bBITS code *)
        match String.index_opt line ' ' with
        | Some i ->
          let bits = String.sub line 1 (i - 1) in
          let code = String.sub line (i + 1) (String.length line - i - 1) in
          changes :=
            { c_time = !time; c_code = code;
              c_value = Option.map (fun n -> Types.Vint n) (int_of_bits bits) }
            :: !changes
        | None -> fail ("malformed vector change: " ^ line))
      else if line.[0] = 'r' then (
        match String.index_opt line ' ' with
        | Some i ->
          let num = String.sub line 1 (i - 1) in
          let code = String.sub line (i + 1) (String.length line - i - 1) in
          (* [rx] is the writer's explicit absent marker; anything else
             must parse as a float *)
          let value =
            if num = "x" || num = "X" then None
            else
              match float_of_string_opt num with
              | Some r -> Some (Types.Vreal r)
              | None ->
                fail ("malformed real change: " ^ line);
                None
          in
          changes :=
            { c_time = !time; c_code = code; c_value = value } :: !changes
        | None -> fail ("malformed real change: " ^ line))
      else if line.[0] = 's' then (
        match String.index_opt line ' ' with
        | Some i ->
          let sv = String.sub line 1 (i - 1) in
          let code = String.sub line (i + 1) (String.length line - i - 1) in
          changes :=
            { c_time = !time; c_code = code;
              c_value =
                (if sv = "x" then None
                 else Some (Types.Vstring (unescape_string sv))) }
            :: !changes
        | None -> fail ("malformed string change: " ^ line))
      else begin
        (* scalar: 0code / 1code / xcode *)
        let v = line.[0] in
        let code = String.sub line 1 (String.length line - 1) in
        let value =
          match v with
          | '0' -> Some (Types.Vbool false)
          | '1' -> Some (Types.Vbool true)
          | 'x' | 'X' | 'z' | 'Z' -> None
          | _ ->
            fail ("malformed scalar change: " ^ line);
            None
        in
        changes := { c_time = !time; c_code = code; c_value = value } :: !changes
      end)
    lines;
  match !error with
  | Some m -> Error m
  | None ->
    Ok { timescale = !timescale; vars = List.rev !vars;
         changes = List.rev !changes }

let value_at t ~name ~time =
  match List.find_opt (fun (_, n) -> String.equal n name) t.vars with
  | None -> None
  | Some (code, _) ->
    List.fold_left
      (fun acc ch ->
        if String.equal ch.c_code code && ch.c_time <= time then ch.c_value
        else acc)
      None t.changes
