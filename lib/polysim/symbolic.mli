(** Fully symbolic bounded reachability over the compiled plan.

    The compiled process's mutable state (delay registers, FIFO
    contents) and its per-instant stimulus choices are encoded as BDD
    variables on three rails — current state on even variables, next
    state on the interleaved odd variables, inputs above both — and a
    symbolic transition relation is rebuilt from
    {!Compile.sym_view}: class presence as boolean formulas, signal
    values as finite {e partitions} (value → producing region), and
    the region where the explicit step would raise as an exact [err]
    formula. Reachability then iterates the relational product
    ({!Clocks.Bdd.and_exists} + {!Clocks.Bdd.rename}) from the
    initial state to a fixpoint or the depth bound, checking the
    safety predicate symbolically on every frontier.

    The engine is {e exact} on its fragment: it returns the same
    verdict as {!Explore.check} (tested by property). Programs
    outside the fragment — unbounded value domains reaching a
    register or queue, queues deeper than 16 — are rejected with an
    [EXPLORE-SYM-001] diagnostic so callers can fall back to the
    explicit engine. *)

val code_unsupported : string
(** Diagnostic code emitted when the process is outside the
    symbolically checkable fragment ([EXPLORE-SYM-001]). *)

(** Safety properties checkable symbolically (and replayable on the
    explicit simulator). *)
type prop =
  | Never_present of Signal_lang.Ast.ident
      (** the signal never occurs *)
  | Never_value of Signal_lang.Ast.ident * Signal_lang.Types.value
      (** the signal never carries this value
          ({!Signal_lang.Types.equal_value} semantics) *)

val safe_of_prop :
  prop ->
  (Signal_lang.Ast.ident * Signal_lang.Types.value) list ->
  bool
(** The explicit-engine safety predicate equivalent to a {!prop},
    for {!Explore.check} parity and counterexample replay. *)

type outcome =
  | Sym_holds of { states : float; depth_used : int; fixpoint : bool }
      (** no violation within the bound; [states] is the exact
          reachable-state count (within [depth - 1] steps, matching
          the explicit engine's accounting), [fixpoint] whether the
          frontier emptied before the bound *)
  | Sym_cex of {
      kind : [ `Violation | `Runtime_error ];
      stimuli :
        (Signal_lang.Ast.ident * Signal_lang.Types.value) list list;
      states : float;
    }
      (** a violating (or erroring) input sequence, one stimulus per
          instant, extracted by walking saved frontiers backward;
          replay it on the compiled simulator to get the explicit
          trace *)

val run :
  ?depth:int ->
  inputs :
    (Signal_lang.Ast.ident * Signal_lang.Types.value option list) list ->
  prop:prop ->
  Compile.t ->
  (outcome, Putil.Diag.t) result
(** Symbolic bounded check of [prop] over the instance's plan (the
    instance's mutable state is not consulted; exploration always
    starts from the initial state). [inputs] uses the same
    alternatives convention as {!Explore.check}; [depth] defaults to
    8 instants. Builds a private BDD manager per call — collected as
    a whole when the check returns. *)
