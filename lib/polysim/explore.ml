module K = Signal_lang.Kernel
module Types = Signal_lang.Types
module Metrics = Putil.Metrics
module Pool = Putil.Domain_pool
module Shard_tbl = Putil.Shard_tbl

let m_checks = Metrics.counter "explore.checks"
let m_steps = Metrics.counter "explore.steps"
let m_domains = Metrics.gauge "explore.domains"
let m_states = Metrics.gauge "explore.states"
let m_frontier_max = Metrics.gauge "explore.frontier_max"
let m_check_ns = Metrics.timer "explore.check_ns"

(* Exploration failures surface as coded diagnostics so `verify` keeps
   its 0/1/2 exit contract instead of crashing on an exception. *)
let code_compile =
  Putil.Diag.code "EXPLORE-COMPILE-001"
    "process does not compile for bounded exploration"
let code_sim =
  Putil.Diag.code "EXPLORE-SIM-001"
    "simulation failed during bounded exploration"

let diag_compile m = Putil.Diag.errorf ~code:code_compile "%s" m
let diag_sim m = Putil.Diag.errorf ~code:code_sim "%s" m

type verdict =
  | Holds
  | Violated of (Signal_lang.Ast.ident * Types.value) list list

(* all stimulus combinations for one instant *)
let combinations inputs =
  List.fold_left
    (fun acc (name, alts) ->
      List.concat_map
        (fun stim ->
          List.map
            (fun alt ->
              match alt with
              | None -> stim
              | Some v -> (name, v) :: stim)
            alts)
        acc)
    [ [] ] inputs

let default_jobs () =
  match Sys.getenv_opt "EXPLORE_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* The original sequential depth-first search, kept as the reference
   semantics the parallel search is tested against. *)
let check_dfs ?(depth = 8) ~inputs ~safe kp =
  match Compile.compile kp with
  | Error m -> Error (diag_compile m)
  | Ok c -> (
    Compile.set_recording c false;
    let stimuli = combinations inputs in
    (* visited: state digest -> best (largest) remaining depth already
       explored from that state *)
    let visited : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    let states = ref 0 in
    let key () = Compile.state_digest c in
    let exception Stop of verdict in
    let exception Sim_failure of string in
    let rec go remaining trail =
      if remaining > 0 then begin
        let k = key () in
        let seen =
          match Hashtbl.find_opt visited k with
          | Some r when r >= remaining -> true
          | _ ->
            Hashtbl.replace visited k remaining;
            false
        in
        if not seen then begin
          incr states;
          let snap = Compile.snapshot c in
          List.iter
            (fun stimulus ->
              Compile.restore c snap;
              match Compile.step c ~stimulus with
              | Ok present ->
                if not (safe present) then
                  raise (Stop (Violated (List.rev (stimulus :: trail))));
                go (remaining - 1) (stimulus :: trail)
              | Error m -> raise (Sim_failure m))
            stimuli
        end
      end
    in
    match go depth [] with
    | () -> Ok (Holds, !states)
    | exception Stop v -> Ok (v, !states)
    | exception Sim_failure m -> Error (diag_sim m))

(* Breadth-first frontier search, one depth slice at a time, fanned out
   over a domain pool.

   Level [d] holds every state first reached after [d] instants. The
   level's items are expanded in parallel: each task borrows a compiled
   instance (all instances share one memoized plan, so an extra instance
   is just fresh delay/FIFO state), restores the item's snapshot, and
   steps it once per stimulus. New states are claimed in a sharded
   visited table keyed by {!Compile.state_digest}.

   Determinism. Every run — any job count, any scheduling — returns the
   same verdict, the same counterexample, and the same state count:

   - an edge is (item index, stimulus index), encoded as
     [item * nstim + stim]; items keep their frontier order, so edge
     keys are schedule-independent;
   - a violating (or failing) edge is min-merged into [best_edge]; edges
     strictly above the current bound may be skipped (they cannot win),
     edges below it always complete, so the surviving edge is the global
     minimum — the shallowest, lexicographically-least counterexample;
   - a fresh state may be claimed by several same-level edges
     concurrently; the table min-merges their keys and the sequential
     merge after the level barrier keeps exactly the child whose edge
     key equals the table's value, i.e. the least edge producing that
     state. The next frontier (order included) is therefore independent
     of the race outcome.

   The claim protocol in the visited table: [-1] marks a state already
   merged into some frontier (expanded, never to be re-entered); a
   non-negative value is the least edge key claiming it during the level
   in flight. The merge promotes claims to [-1].

   The state count matches the DFS within dedup tolerance: BFS reaches
   every state at its minimal depth, hence maximal remaining budget, and
   expands it exactly once, while the DFS may re-expand a state reached
   again with a larger remaining budget. *)
let check ?(depth = 8) ?jobs ~inputs ~safe kp =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  Putil.Tracing.with_span "explore.check"
    ~args:
      [ ("depth", Putil.Tracing.Aint depth);
        ("jobs", Putil.Tracing.Aint jobs) ]
  @@ fun () ->
  match Compile.compile kp with
  | Error m -> Error (diag_compile m)
  | Ok c0 ->
    Metrics.incr m_checks;
    Metrics.set m_domains jobs;
    Metrics.time m_check_ns @@ fun () ->
    if depth <= 0 then Ok (Holds, 0)
    else begin
      Compile.set_recording c0 false;
      let stimuli = Array.of_list (combinations inputs) in
      let nstim = Array.length stimuli in
      (* Instance lending: a task borrows an instance for a whole chunk,
         so at most [jobs] instances ever exist. [c0] seeds the pool. *)
      let inst_free = ref [ c0 ] in
      let inst_mu = Mutex.create () in
      let with_instance f =
        let borrowed =
          Mutex.protect inst_mu (fun () ->
            match !inst_free with
            | c :: tl ->
              inst_free := tl;
              Some c
            | [] -> None)
        in
        let c =
          match borrowed with
          | Some c -> c
          | None ->
            (* A fork over [c0]'s already-built plan cannot fail, so
               instance exhaustion can never crash the search. *)
            let c = Compile.fork c0 in
            Compile.set_recording c false;
            c
        in
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect inst_mu (fun () -> inst_free := c :: !inst_free))
          (fun () -> f c)
      in
      let visited : int Shard_tbl.t = Shard_tbl.create () in
      Shard_tbl.update visited (Compile.state_digest c0) (fun _ -> Some (-1));
      let states = ref 1 in
      let frontier =
        ref
          [|
            ( Compile.snapshot c0,
              ([] : (Signal_lang.Ast.ident * Types.value) list list) );
          |]
      in
      let frontier_peak = ref 1 in
      let best_edge = Atomic.make max_int in
      let best_outcome :
          (int * ((verdict, Putil.Diag.t) result)) option ref =
        ref None
      in
      let outcome_mu = Mutex.create () in
      let record ek out =
        let rec lower () =
          let cur = Atomic.get best_edge in
          if ek < cur && not (Atomic.compare_and_set best_edge cur ek) then
            lower ()
        in
        lower ();
        Mutex.protect outcome_mu @@ fun () ->
        match !best_outcome with
        | Some (bek, _) when bek <= ek -> ()
        | _ -> best_outcome := Some (ek, out)
      in
      let result = ref None in
      Pool.with_pool jobs @@ fun pool ->
      let level = ref 0 in
      while !result = None && !level < depth && Array.length !frontier > 0 do
        let items = !frontier in
        let n = Array.length items in
        if n > !frontier_peak then frontier_peak := n;
        let expand_children = !level + 1 < depth in
        let children = Array.make n [||] in
        Atomic.set best_edge max_int;
        best_outcome := None;
        let chunk = max 1 ((n + (jobs * 8) - 1) / (jobs * 8)) in
        let tasks = ref [] in
        let lo = ref 0 in
        while !lo < n do
          let lo0 = !lo in
          let hi0 = min n (lo0 + chunk) in
          lo := hi0;
          tasks :=
            (fun () ->
              with_instance @@ fun c ->
              for i = lo0 to hi0 - 1 do
                let base = i * nstim in
                if base < Atomic.get best_edge then begin
                  let snap, trail = items.(i) in
                  let kids =
                    if expand_children then Array.make nstim None else [||]
                  in
                  for s = 0 to nstim - 1 do
                    let ek = base + s in
                    if ek < Atomic.get best_edge then begin
                      Compile.restore c snap;
                      let stimulus = stimuli.(s) in
                      match Compile.step c ~stimulus with
                      | Ok present ->
                        Metrics.incr m_steps;
                        if not (safe present) then
                          record ek
                            (Ok (Violated (List.rev (stimulus :: trail))))
                        else if expand_children then begin
                          let dg = Compile.state_digest c in
                          let claimed = ref false in
                          Shard_tbl.update visited dg (function
                            | None ->
                              claimed := true;
                              Some ek
                            | Some cur when cur >= 0 && ek < cur ->
                              claimed := true;
                              Some ek
                            | keep -> keep);
                          if !claimed then
                            kids.(s) <-
                              Some (dg, Compile.snapshot c, stimulus :: trail)
                        end
                      | Error m -> record ek (Error (diag_sim m))
                    end
                  done;
                  children.(i) <- kids
                end
              done)
            :: !tasks
        done;
        Pool.run_tasks pool (List.rev !tasks);
        (match !best_outcome with
        | Some (_, Ok v) -> result := Some (Ok (v, !states))
        | Some (_, Error m) -> result := Some (Error m)
        | None ->
          if expand_children then begin
            let next = ref [] in
            for i = 0 to n - 1 do
              let kids = children.(i) in
              for s = 0 to Array.length kids - 1 do
                match kids.(s) with
                | Some (dg, snap, trail) -> (
                  let ek = (i * nstim) + s in
                  match Shard_tbl.find_opt visited dg with
                  | Some v when v = ek ->
                    (* least edge producing [dg]: its child is the
                       state's canonical representative *)
                    Shard_tbl.update visited dg (fun _ -> Some (-1));
                    incr states;
                    next := (snap, trail) :: !next
                  | _ -> ())
                | None -> ()
              done
            done;
            frontier := Array.of_list (List.rev !next)
          end
          else frontier := [||]);
        incr level
      done;
      Metrics.set m_states !states;
      Metrics.set m_frontier_max !frontier_peak;
      match !result with
      | Some r -> r
      | None -> Ok (Holds, !states)
    end

let reachable_states ?depth ?jobs ~inputs kp =
  match check ?depth ?jobs ~inputs ~safe:(fun _ -> true) kp with
  | Ok (_, n) -> Ok n
  | Error m -> Error m
