module K = Signal_lang.Kernel
module Types = Signal_lang.Types
module Metrics = Putil.Metrics
module Pool = Putil.Domain_pool
module Shard_tbl = Putil.Shard_tbl

let m_checks = Metrics.counter "explore.checks"
let m_steps = Metrics.counter "explore.steps"
let m_domains = Metrics.gauge "explore.domains"
let m_states = Metrics.gauge "explore.states"
let m_frontier_max = Metrics.gauge "explore.frontier_max"
let m_check_ns = Metrics.timer "explore.check_ns"

(* Exploration failures surface as coded diagnostics so `verify` keeps
   its 0/1/2 exit contract instead of crashing on an exception. *)
let code_compile =
  Putil.Diag.code "EXPLORE-COMPILE-001"
    "process does not compile for bounded exploration"
let code_sim =
  Putil.Diag.code "EXPLORE-SIM-001"
    "simulation failed during bounded exploration"
let code_stim =
  Putil.Diag.code "EXPLORE-STIM-001"
    "stimulus combination space is too large to enumerate"
let code_replay =
  Putil.Diag.code "EXPLORE-SYM-002"
    "symbolic counterexample failed to replay on the explicit simulator"

let diag_compile m = Putil.Diag.errorf ~code:code_compile "%s" m
let diag_sim m = Putil.Diag.errorf ~code:code_sim "%s" m

type verdict =
  | Holds
  | Violated of (Signal_lang.Ast.ident * Types.value) list list

(* ------------------------------------------------------------------ *)
(* Stimulus space: an index-carried mixed-radix iterator               *)
(* ------------------------------------------------------------------ *)

(* The stimulus combinations of one instant form the cartesian product
   of the per-input alternative lists. The product used to be
   materialized as a list of assoc lists — exponential in inputs both
   in time and live heap. It is now addressed by integer index: input
   [i]'s digit at index [s] is [(s / suffix.(i+1)) mod radix_i] with
   the first listed input most significant, which reproduces the
   historical enumeration order (and therefore the counterexamples)
   exactly. Combinations are written straight into the dense stimulus
   buffer; assoc lists are only built for counterexample trails. *)
type stim_space = {
  ss_names : string array;
  ss_idx : int array; (* dense signal index; -1 when never present *)
  ss_alts : Types.value option array array;
  ss_suffix : int array; (* suffix.(i) = product of radices >= i *)
  ss_count : int;
}

let stim_cap = 1 lsl 30

(* Validate the stimulus spec upfront (shared by every engine) and
   precompute the mixed-radix layout. Unknown or non-input names are
   only an error if some alternative could make them present, matching
   what a [Compile.step] with that stimulus would have raised. *)
let stim_space c inputs =
  let arr = Array.of_list inputs in
  let k = Array.length arr in
  let names = Array.map fst arr in
  let alts = Array.map (fun (_, a) -> Array.of_list a) arr in
  let idx = Array.make k (-1) in
  let err = ref None in
  Array.iteri
    (fun i name ->
      if !err = None then
        let could_present = Array.exists (fun a -> a <> None) alts.(i) in
        match Compile.signal_index c name with
        | Some j when Compile.is_input c j -> idx.(i) <- j
        | Some _ ->
          if could_present then
            err :=
              Some
                (diag_sim
                   (Printf.sprintf "stimulus for non-input signal %s" name))
        | None ->
          if could_present then
            err :=
              Some
                (diag_sim
                   (Printf.sprintf "stimulus for unknown signal %s" name)))
    names;
  match !err with
  | Some d -> Error d
  | None ->
    let suffix = Array.make (k + 1) 1 in
    let ok = ref true in
    for i = k - 1 downto 0 do
      let p = suffix.(i + 1) * Array.length alts.(i) in
      if p > stim_cap then ok := false;
      suffix.(i) <- p
    done;
    if not !ok then
      Error
        (Putil.Diag.errorf ~code:code_stim
           "%d stimulus inputs yield more than %d combinations per instant"
           k stim_cap)
    else
      Ok { ss_names = names; ss_idx = idx; ss_alts = alts; ss_suffix = suffix;
           ss_count = suffix.(0) }

(* digit of input [i] at combination index [s] *)
let stim_digit sp i s =
  (s / sp.ss_suffix.(i + 1)) mod Array.length sp.ss_alts.(i)

(* write combination [s] into the instance's dense stimulus buffer *)
let fill_stim c sp s =
  Compile.stim_clear c;
  for i = 0 to Array.length sp.ss_idx - 1 do
    match sp.ss_alts.(i).(stim_digit sp i s) with
    | Some v -> Compile.set_stim c sp.ss_idx.(i) v
    | None -> ()
  done

(* the assoc list the historical [combinations] built for index [s] *)
let stim_assoc sp s =
  let acc = ref [] in
  for i = 0 to Array.length sp.ss_idx - 1 do
    match sp.ss_alts.(i).(stim_digit sp i s) with
    | Some v -> acc := (sp.ss_names.(i), v) :: !acc
    | None -> ()
  done;
  !acc

(* trail of combination indices (newest first) -> stimulus sequence *)
let trail_assoc sp trail = List.rev_map (stim_assoc sp) trail

let default_jobs () =
  match Sys.getenv_opt "EXPLORE_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* The original sequential depth-first search, kept as the reference
   semantics the parallel search is tested against. *)
let check_dfs ?(depth = 8) ~inputs ~safe kp =
  match Compile.compile kp with
  | Error m -> Error (diag_compile m)
  | Ok c -> (
    match stim_space c inputs with
    | Error d -> Error d
    | Ok sp -> (
      Compile.set_recording c false;
      let nstim = sp.ss_count in
      let kb = Compile.keybuf () in
      (* visited: state key -> best (largest) remaining depth already
         explored from that state *)
      let visited : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let states = ref 0 in
      let exception Stop of verdict in
      let exception Sim_failure of string in
      let rec go remaining trail =
        if remaining > 0 then begin
          let k = Compile.state_key c kb in
          let seen =
            match Hashtbl.find_opt visited k with
            | Some r when r >= remaining -> true
            | _ ->
              Hashtbl.replace visited k remaining;
              false
          in
          if not seen then begin
            incr states;
            let snap = Compile.snapshot c in
            for s = 0 to nstim - 1 do
              Compile.restore c snap;
              fill_stim c sp s;
              match Compile.step_prepared c with
              | Ok () ->
                if not (safe (Compile.present_assoc c)) then
                  raise (Stop (Violated (trail_assoc sp (s :: trail))));
                go (remaining - 1) (s :: trail)
              | Error m -> raise (Sim_failure m)
            done
          end
        end
      in
      match go depth [] with
      | () -> Ok (Holds, !states)
      | exception Stop v -> Ok (v, !states)
      | exception Sim_failure m -> Error (diag_sim m)))

(* Breadth-first frontier search, one depth slice at a time, fanned out
   over a domain pool.

   Level [d] holds every state first reached after [d] instants. The
   level's items are expanded in parallel: each task borrows a compiled
   instance (all instances share one memoized plan, so an extra instance
   is just fresh delay/FIFO state) paired with a serialization buffer,
   restores the item's snapshot, and steps it once per stimulus index.
   New states are claimed in a sharded visited table keyed by
   {!Compile.state_key} (fixed-width digest through the reused buffer).

   Determinism. Every run — any job count, any scheduling — returns the
   same verdict, the same counterexample, and the same state count:

   - an edge is (item index, stimulus index), encoded as
     [item * nstim + stim]; items keep their frontier order, so edge
     keys are schedule-independent;
   - a violating (or failing) edge is min-merged into [best_edge]; edges
     strictly above the current bound may be skipped (they cannot win),
     edges below it always complete, so the surviving edge is the global
     minimum — the shallowest, lexicographically-least counterexample;
   - a fresh state may be claimed by several same-level edges
     concurrently; the table min-merges their keys and the sequential
     merge after the level barrier keeps exactly the child whose edge
     key equals the table's value, i.e. the least edge producing that
     state. The next frontier (order included) is therefore independent
     of the race outcome.

   The claim protocol in the visited table: [-1] marks a state already
   merged into some frontier (expanded, never to be re-entered); a
   non-negative value is the least edge key claiming it during the level
   in flight. The merge promotes claims to [-1].

   The state count matches the DFS within dedup tolerance: BFS reaches
   every state at its minimal depth, hence maximal remaining budget, and
   expands it exactly once, while the DFS may re-expand a state reached
   again with a larger remaining budget. *)
let check ?(depth = 8) ?jobs ~inputs ~safe kp =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  Putil.Tracing.with_span "explore.check"
    ~args:
      [ ("depth", Putil.Tracing.Aint depth);
        ("jobs", Putil.Tracing.Aint jobs) ]
  @@ fun () ->
  match Compile.compile kp with
  | Error m -> Error (diag_compile m)
  | Ok c0 -> (
    match stim_space c0 inputs with
    | Error d -> Error d
    | Ok sp ->
      Metrics.incr m_checks;
      Metrics.set m_domains jobs;
      Metrics.time m_check_ns @@ fun () ->
      if depth <= 0 then Ok (Holds, 0)
      else begin
        Compile.set_recording c0 false;
        let nstim = sp.ss_count in
        (* Instance lending: a task borrows an instance (and its paired
           key buffer) for a whole chunk, so at most [jobs] instances
           ever exist. [c0] seeds the pool. *)
        let kb0 = Compile.keybuf () in
        let inst_free = ref [ (c0, kb0) ] in
        let inst_mu = Mutex.create () in
        let with_instance f =
          let borrowed =
            Mutex.protect inst_mu (fun () ->
              match !inst_free with
              | c :: tl ->
                inst_free := tl;
                Some c
              | [] -> None)
          in
          let c =
            match borrowed with
            | Some c -> c
            | None ->
              (* A fork over [c0]'s already-built plan cannot fail, so
                 instance exhaustion can never crash the search. *)
              let c = Compile.fork c0 in
              Compile.set_recording c false;
              (c, Compile.keybuf ())
          in
          Fun.protect
            ~finally:(fun () ->
              Mutex.protect inst_mu (fun () -> inst_free := c :: !inst_free))
            (fun () -> f c)
        in
        let visited : int Shard_tbl.t = Shard_tbl.create () in
        Shard_tbl.update visited (Compile.state_key c0 kb0) (fun _ ->
            Some (-1));
        let states = ref 1 in
        let frontier = ref [| (Compile.snapshot c0, ([] : int list)) |] in
        let frontier_peak = ref 1 in
        let best_edge = Atomic.make max_int in
        let best_outcome :
            (int * ((verdict, Putil.Diag.t) result)) option ref =
          ref None
        in
        let outcome_mu = Mutex.create () in
        let record ek out =
          let rec lower () =
            let cur = Atomic.get best_edge in
            if ek < cur && not (Atomic.compare_and_set best_edge cur ek) then
              lower ()
          in
          lower ();
          Mutex.protect outcome_mu @@ fun () ->
          match !best_outcome with
          | Some (bek, _) when bek <= ek -> ()
          | _ -> best_outcome := Some (ek, out)
        in
        let result = ref None in
        Pool.with_pool jobs @@ fun pool ->
        let level = ref 0 in
        while !result = None && !level < depth && Array.length !frontier > 0
        do
          let items = !frontier in
          let n = Array.length items in
          if n > !frontier_peak then frontier_peak := n;
          let expand_children = !level + 1 < depth in
          let children = Array.make n [||] in
          Atomic.set best_edge max_int;
          best_outcome := None;
          let chunk = max 1 ((n + (jobs * 8) - 1) / (jobs * 8)) in
          let tasks = ref [] in
          let lo = ref 0 in
          while !lo < n do
            let lo0 = !lo in
            let hi0 = min n (lo0 + chunk) in
            lo := hi0;
            tasks :=
              (fun () ->
                with_instance @@ fun (c, kb) ->
                for i = lo0 to hi0 - 1 do
                  let base = i * nstim in
                  if base < Atomic.get best_edge then begin
                    let snap, trail = items.(i) in
                    let kids =
                      if expand_children then Array.make nstim None else [||]
                    in
                    for s = 0 to nstim - 1 do
                      let ek = base + s in
                      if ek < Atomic.get best_edge then begin
                        Compile.restore c snap;
                        fill_stim c sp s;
                        match Compile.step_prepared c with
                        | Ok () ->
                          Metrics.incr m_steps;
                          if not (safe (Compile.present_assoc c)) then
                            record ek
                              (Ok (Violated (trail_assoc sp (s :: trail))))
                          else if expand_children then begin
                            let dg = Compile.state_key c kb in
                            let claimed = ref false in
                            Shard_tbl.update visited dg (function
                              | None ->
                                claimed := true;
                                Some ek
                              | Some cur when cur >= 0 && ek < cur ->
                                claimed := true;
                                Some ek
                              | keep -> keep);
                            if !claimed then
                              kids.(s) <-
                                Some (dg, Compile.snapshot c, s :: trail)
                          end
                        | Error m -> record ek (Error (diag_sim m))
                      end
                    done;
                    children.(i) <- kids
                  end
                done)
              :: !tasks
          done;
          Pool.run_tasks pool (List.rev !tasks);
          (match !best_outcome with
          | Some (_, Ok v) -> result := Some (Ok (v, !states))
          | Some (_, Error m) -> result := Some (Error m)
          | None ->
            if expand_children then begin
              let next = ref [] in
              for i = 0 to n - 1 do
                let kids = children.(i) in
                for s = 0 to Array.length kids - 1 do
                  match kids.(s) with
                  | Some (dg, snap, trail) -> (
                    let ek = (i * nstim) + s in
                    match Shard_tbl.find_opt visited dg with
                    | Some v when v = ek ->
                      (* least edge producing [dg]: its child is the
                         state's canonical representative *)
                      Shard_tbl.update visited dg (fun _ -> Some (-1));
                      incr states;
                      next := (snap, trail) :: !next
                    | _ -> ())
                  | None -> ()
                done
              done;
              frontier := Array.of_list (List.rev !next)
            end
            else frontier := [||]);
          incr level
        done;
        Metrics.set m_states !states;
        Metrics.set m_frontier_max !frontier_peak;
        match !result with
        | Some r -> r
        | None -> Ok (Holds, !states)
      end)

(* Symbolic engine front-end: run the BDD reachability, then ground any
   symbolic counterexample by replaying its stimulus sequence on a
   fresh explicit instance — the verdict handed back is always
   explicit-simulator truth, never just a BDD artifact. *)
(* sat_count can exceed the int range; saturate rather than wrap *)
let states_int f = if f >= float_of_int max_int then max_int else int_of_float f

(* one replay instant over the dense stimulus ABI: named arrivals into
   the stimulus buffer, then the boxed present view for the safety
   predicate *)
let step_assoc r stimulus =
  Compile.stim_clear r;
  let rec fill = function
    | [] -> Ok ()
    | (x, v) :: rest -> (
      match Compile.signal_index r x with
      | Some i when Compile.is_input r i ->
        Compile.set_stim r i v;
        fill rest
      | Some _ -> Error ("stimulus for non-input signal " ^ x)
      | None -> Error ("stimulus for unknown signal " ^ x))
  in
  match fill stimulus with
  | Error _ as e -> e
  | Ok () -> (
    match Compile.step_prepared r with
    | Error _ as e -> e
    | Ok () -> Ok (Compile.present_assoc r))

let check_symbolic ?depth ~inputs ~prop kp =
  match Compile.compile kp with
  | Error m -> Error (diag_compile m)
  | Ok c -> (
    (* shared name validation only: the combination-count cap is a
       limit of the enumerating engines, not of image computation *)
    match stim_space c inputs with
    | Error d when d.Putil.Diag.code <> code_stim -> Error d
    | Error _ | Ok _ -> (
      match Symbolic.run ?depth ~inputs ~prop c with
      | Error d -> Error d
      | Ok (Symbolic.Sym_holds { states; _ }) ->
        Ok (Holds, states_int states)
      | Ok (Symbolic.Sym_cex { kind; stimuli; states }) ->
        let r = Compile.fork c in
        Compile.set_recording r false;
        let safe = Symbolic.safe_of_prop prop in
        let diverged i m =
          Error
            (Putil.Diag.errorf ~code:code_replay
               "symbolic counterexample diverged at instant %d: %s" i m)
        in
        let rec replay i = function
          | [] -> diverged i "empty stimulus sequence"
          | [ stimulus ] -> (
            match step_assoc r stimulus with
            | Ok present -> (
              match kind with
              | `Violation when not (safe present) ->
                Ok (Violated stimuli, states_int states)
              | `Violation -> diverged i "explicit run stays safe"
              | `Runtime_error ->
                diverged i "explicit run does not raise")
            | Error m -> (
              match kind with
              | `Runtime_error -> Error (diag_sim m)
              | `Violation -> diverged i m))
          | stimulus :: rest -> (
            match step_assoc r stimulus with
            | Ok _ -> replay (i + 1) rest
            | Error m -> diverged i m)
        in
        replay 1 stimuli))

let reachable_states ?depth ?jobs ~inputs kp =
  match check ?depth ?jobs ~inputs ~safe:(fun _ -> true) kp with
  | Ok (_, n) -> Ok n
  | Error m -> Error m
