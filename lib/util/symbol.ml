(* Hash-consed symbols: every distinct string is interned once and
   identified by a dense integer id, so symbol equality/hashing is
   integer equality and symbol-keyed maps can be flat arrays. *)

type t = int

(* The interner is global and append-only: ids are dense and stable
   for the lifetime of the program, which is what lets per-process
   tables be plain int arrays. All reads and writes of the intern
   structures happen under [lock] so symbols can be interned from any
   domain (the parallel explorer compiles on worker domains). *)
let strings : string array ref = ref (Array.make 1024 "")
let count = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let lock = Mutex.create ()

let of_string s =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = !count in
    if id >= Array.length !strings then begin
      let bigger = Array.make (2 * Array.length !strings) "" in
      Array.blit !strings 0 bigger 0 id;
      strings := bigger
    end;
    !strings.(id) <- s;
    count := id + 1;
    Hashtbl.add table s id;
    id

let name t = Mutex.protect lock (fun () -> !strings.(t))
let id t = t
let interned_count () = Mutex.protect lock (fun () -> !count)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (t : t) = t
let pp ppf t = Format.pp_print_string ppf (name t)

(* Symbol-indexed growable arrays: flat int-indexed storage with a
   default for slots never written (symbols interned after creation
   included). *)
module Tbl = struct
  type sym = t

  type 'a t = {
    default : 'a;
    mutable slots : 'a array;
  }

  let create ?(size = 64) default =
    { default; slots = Array.make (max size 1) default }

  let ensure t i =
    if i >= Array.length t.slots then begin
      let n = ref (2 * Array.length t.slots) in
      while i >= !n do
        n := 2 * !n
      done;
      let bigger = Array.make !n t.default in
      Array.blit t.slots 0 bigger 0 (Array.length t.slots);
      t.slots <- bigger
    end

  let get t (s : sym) =
    if s < Array.length t.slots then t.slots.(s) else t.default

  let set t (s : sym) v =
    ensure t s;
    t.slots.(s) <- v
end
