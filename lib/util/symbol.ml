(* Hash-consed symbols: every distinct string is interned once and
   identified by a dense integer id, so symbol equality/hashing is
   integer equality and symbol-keyed maps can be flat arrays. *)

type t = int

(* The interner is global and append-only: ids are dense and stable
   for the lifetime of the program, which is what lets per-process
   tables be plain int arrays.

   Writers (interning) serialize on [lock]; readers ([name],
   [interned_count]) are lock-free. The publication protocol makes
   this safe under the OCaml memory model: a writer stores the string
   into the current backing array (growing by copy-then-[Atomic.set]
   first if needed) and only then advances [count] with an atomic
   store. A reader loads [count] first and the array second, so any
   id below the count it observed was fully published before the
   matching array — both the slot write and any array swap
   happen-before the count increment. Grown-out arrays are never
   mutated again, so a reader holding a stale array still sees every
   slot below its observed count. *)
let strings : string array Atomic.t = Atomic.make (Array.make 1024 "")
let count = Atomic.make 0
let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let lock = Mutex.create ()

let of_string s =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = Atomic.get count in
    let arr = Atomic.get strings in
    let arr =
      if id >= Array.length arr then begin
        let bigger = Array.make (2 * Array.length arr) "" in
        Array.blit arr 0 bigger 0 id;
        Atomic.set strings bigger;
        bigger
      end
      else arr
    in
    arr.(id) <- s;
    Atomic.set count (id + 1);
    Hashtbl.add table s id;
    id

let name t =
  if t < Atomic.get count then (Atomic.get strings).(t)
  else invalid_arg "Symbol.name: not an interned symbol"

let id t = t
let interned_count () = Atomic.get count

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (t : t) = t
let pp ppf t = Format.pp_print_string ppf (name t)

(* Symbol-indexed growable arrays: flat int-indexed storage with a
   default for slots never written (symbols interned after creation
   included). *)
module Tbl = struct
  type sym = t

  type 'a t = {
    default : 'a;
    mutable slots : 'a array;
  }

  let create ?(size = 64) default =
    { default; slots = Array.make (max size 1) default }

  let ensure t i =
    if i >= Array.length t.slots then begin
      let n = ref (2 * Array.length t.slots) in
      while i >= !n do
        n := 2 * !n
      done;
      let bigger = Array.make !n t.default in
      Array.blit t.slots 0 bigger 0 (Array.length t.slots);
      t.slots <- bigger
    end

  let get t (s : sym) =
    if s < Array.length t.slots then t.slots.(s) else t.default

  let set t (s : sym) v =
    ensure t s;
    t.slots.(s) <- v
end
