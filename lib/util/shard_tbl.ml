(* A string-keyed hash table split into independently locked shards.
   Callers hash to a shard by key, so concurrent access from several
   domains only contends when two keys land in the same shard. The
   per-key [update] is the primitive: a read-modify-write under the
   shard's mutex, which is enough to build atomic claim/min-merge
   protocols (the state-space explorer's visited table) without a
   global lock. *)

type 'v t = {
  mutexes : Mutex.t array;
  tables : (string, 'v) Hashtbl.t array;
  mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(shards = 16) () =
  if shards < 1 then invalid_arg "Shard_tbl.create: need at least one shard";
  let n = pow2_at_least shards 1 in
  { mutexes = Array.init n (fun _ -> Mutex.create ());
    tables = Array.init n (fun _ -> Hashtbl.create 64);
    mask = n - 1 }

let shard_count t = Array.length t.tables

let shard_of t k = Hashtbl.hash k land t.mask

let find_opt t k =
  let s = shard_of t k in
  Mutex.protect t.mutexes.(s) @@ fun () -> Hashtbl.find_opt t.tables.(s) k

let mem t k = find_opt t k <> None

let update t k f =
  let s = shard_of t k in
  Mutex.protect t.mutexes.(s) @@ fun () ->
  let tbl = t.tables.(s) in
  match f (Hashtbl.find_opt tbl k) with
  | Some v -> Hashtbl.replace tbl k v
  | None -> Hashtbl.remove tbl k

let length t =
  let n = ref 0 in
  Array.iteri
    (fun s tbl ->
      Mutex.protect t.mutexes.(s) (fun () -> n := !n + Hashtbl.length tbl))
    t.tables;
  !n

let clear t =
  Array.iteri
    (fun s tbl -> Mutex.protect t.mutexes.(s) (fun () -> Hashtbl.reset tbl))
    t.tables
