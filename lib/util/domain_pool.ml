(* Fixed pool of OCaml 5 domains with per-lane work-stealing deques.

   The pool is batch-oriented: [run_tasks] distributes a batch of
   thunks round-robin over the lanes, wakes the worker domains, and
   has the calling domain work alongside them until the batch drains.
   Each lane owns a deque; owners pop from the bottom (LIFO, cache
   warm), thieves steal from the top (FIFO, oldest work first). Deques
   are guarded by a per-lane mutex — uncontended in the common case,
   and the batch sizes the explorer submits (tens to thousands of
   thunks, each tens of microseconds) amortize it entirely.

   Cancellation is cooperative: [cancel] raises an [Atomic] flag, after
   which not-yet-started tasks of the current batch are drained without
   running and subsequent batches return immediately. Long-running
   tasks can poll [cancelled] themselves. *)

type deque = {
  mu : Mutex.t;
  mutable items : (unit -> unit) array;  (* circular buffer *)
  mutable head : int;                    (* index of oldest item *)
  mutable len : int;
}

let no_task () = ()

let deque_create () =
  { mu = Mutex.create (); items = Array.make 64 no_task; head = 0; len = 0 }

let deque_push d f =
  Mutex.protect d.mu @@ fun () ->
  let cap = Array.length d.items in
  if d.len >= cap then begin
    let bigger = Array.make (2 * cap) no_task in
    for k = 0 to d.len - 1 do
      bigger.(k) <- d.items.((d.head + k) mod cap)
    done;
    d.items <- bigger;
    d.head <- 0
  end;
  let cap = Array.length d.items in
  d.items.((d.head + d.len) mod cap) <- f;
  d.len <- d.len + 1

(* owner end: newest item *)
let deque_pop d =
  Mutex.protect d.mu @@ fun () ->
  if d.len = 0 then None
  else begin
    let cap = Array.length d.items in
    let i = (d.head + d.len - 1) mod cap in
    let f = d.items.(i) in
    d.items.(i) <- no_task;
    d.len <- d.len - 1;
    Some f
  end

(* thief end: oldest item *)
let deque_steal d =
  Mutex.protect d.mu @@ fun () ->
  if d.len = 0 then None
  else begin
    let f = d.items.(d.head) in
    d.items.(d.head) <- no_task;
    d.head <- (d.head + 1) mod Array.length d.items;
    d.len <- d.len - 1;
    Some f
  end

type t = {
  lanes : int;                      (* worker lanes incl. the caller *)
  deques : deque array;
  cancel_flag : bool Atomic.t;
  pending : int Atomic.t;           (* tasks of the current batch left *)
  lock : Mutex.t;                   (* guards epoch/shutdown signalling *)
  wake : Condition.t;               (* workers: new batch or shutdown *)
  batch_done : Condition.t;         (* caller: pending reached zero *)
  mutable epoch : int;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t array;
  mutable exn : (exn * Printexc.raw_backtrace) option; (* first task exn *)
}

let size p = p.lanes

(* live depth of the current batch, for the OpenMetrics exposition *)
let m_queue_depth = Metrics.gauge "pool.queue_depth"
let m_batches = Metrics.counter "pool.batches"
let cancel p = Atomic.set p.cancel_flag true
let cancelled p = Atomic.get p.cancel_flag
let reset_cancel p = Atomic.set p.cancel_flag false

let record_exn p e bt =
  Mutex.protect p.lock @@ fun () ->
  if p.exn = None then p.exn <- Some (e, bt)

let run_one p f =
  (match f () with
   | () -> ()
   | exception e ->
     record_exn p e (Printexc.get_raw_backtrace ());
     cancel p);
  let left = Atomic.fetch_and_add p.pending (-1) - 1 in
  Metrics.set m_queue_depth (max 0 left);
  if left = 0 then begin
    (* last task of the batch: wake the caller *)
    Mutex.protect p.lock @@ fun () -> Condition.broadcast p.batch_done
  end

(* grab work for lane [me]: own deque first, then steal round-robin *)
let find_task p me =
  match deque_pop p.deques.(me) with
  | Some _ as f -> f
  | None ->
    let rec steal k =
      if k >= p.lanes then None
      else
        let victim = (me + k) mod p.lanes in
        match deque_steal p.deques.(victim) with
        | Some _ as f -> f
        | None -> steal (k + 1)
    in
    steal 1

(* drain the current batch from lane [me]; cancellation still consumes
   tasks (so [pending] reaches zero) but skips running them *)
let work p me =
  let rec go () =
    match find_task p me with
    | Some f ->
      if cancelled p then run_one p ignore else run_one p f;
      go ()
    | None -> ()
  in
  go ()

let worker p me =
  let rec loop last_epoch =
    let epoch =
      Mutex.protect p.lock @@ fun () ->
      while p.epoch = last_epoch && not p.shutting_down do
        Condition.wait p.wake p.lock
      done;
      p.epoch
    in
    if not p.shutting_down then begin
      work p me;
      loop epoch
    end
  in
  loop 0

let create lanes =
  if lanes < 1 then invalid_arg "Domain_pool.create: need at least one lane";
  let p =
    { lanes;
      deques = Array.init lanes (fun _ -> deque_create ());
      cancel_flag = Atomic.make false;
      pending = Atomic.make 0;
      lock = Mutex.create ();
      wake = Condition.create ();
      batch_done = Condition.create ();
      epoch = 0;
      shutting_down = false;
      domains = [||];
      exn = None }
  in
  p.domains <-
    Array.init (lanes - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
  p

let run_tasks p tasks =
  match tasks with
  | [] -> ()
  | _ ->
    let n = List.length tasks in
    (* propagate the submitting domain's ambient observation state
       (scope stack + trace-span parent) into every task, so worker
       metrics attribute to the submitting scope and worker spans
       parent under the submitting span instead of being orphaned *)
    let ctx = Obs.capture () in
    let tasks = List.map (fun f () -> Obs.run_with ctx f) tasks in
    Metrics.incr m_batches;
    Metrics.set m_queue_depth n;
    Atomic.set p.pending n;
    List.iteri (fun i f -> deque_push p.deques.(i mod p.lanes) f) tasks;
    Mutex.protect p.lock (fun () ->
        p.epoch <- p.epoch + 1;
        Condition.broadcast p.wake);
    (* the caller is lane 0 *)
    work p 0;
    Mutex.protect p.lock (fun () ->
        while Atomic.get p.pending > 0 do
          Condition.wait p.batch_done p.lock
        done);
    (match p.exn with
     | Some (e, bt) ->
       p.exn <- None;
       Printexc.raise_with_backtrace e bt
     | None -> ())

let shutdown p =
  Mutex.protect p.lock (fun () ->
      p.shutting_down <- true;
      Condition.broadcast p.wake);
  Array.iter Domain.join p.domains;
  p.domains <- [||]

let with_pool lanes f =
  let p = create lanes in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
