(** Persistent content-addressed cache store.

    On-disk memoization shared across process invocations: entries are
    keyed by a [(stage, key)] pair where [key] is a content digest of
    the inputs that produced the payload, so a warm store lets a fresh
    process replay pipeline stages it has never run.

    Format and safety:
    - every entry file starts with a magic string and a format/version
      stamp (including [Sys.ocaml_version], since payloads are
      [Marshal]ed and the marshalling format is compiler-specific);
    - the payload is guarded by an MD5 integrity hash and a length
      field — truncation, bit flips or a stamp mismatch are treated as
      a cache miss (the damaged file is deleted), never a crash;
    - writes go to a temporary file in the store directory and are
      published with an atomic [Sys.rename], so concurrent readers
      never observe a partial entry;
    - the store is size-bounded: when the total payload size exceeds
      [max_bytes], least-recently-used entries (by access time) are
      evicted.

    Payloads must be pure data (no closures, no custom blocks with
    identity, nothing relying on physical sharing); [put] rejects
    functional values with [Invalid_argument]. Type safety across the
    untyped [Marshal] boundary is the caller's responsibility: a given
    [stage] tag must always store values of one type. The version
    stamp protects against reading payloads written by a different
    binary format, not against same-version type confusion.

    All operations are protected by a per-handle mutex and are safe to
    call from multiple domains sharing one handle. Two separate
    processes sharing a directory are safe against torn reads (atomic
    rename + integrity hash); their evictions race benignly (a lost
    entry is a miss). *)

type t

type stats = {
  entries : int;  (** live entries in the store *)
  bytes : int;  (** total payload bytes on disk *)
  hits : int;  (** [get] calls that returned a value (this handle) *)
  misses : int;  (** [get] calls that found nothing (this handle) *)
  writes : int;  (** successful [put]s (this handle) *)
  corrupt : int;
      (** entries discarded on read: bad magic, stamp mismatch,
          truncation or integrity-hash failure (this handle) *)
  evictions : int;  (** entries evicted by the LRU bound (this handle) *)
}

val default_max_bytes : int
(** 64 MiB. *)

val open_store : ?max_bytes:int -> string -> (t, string) result
(** [open_store dir] opens (creating if needed) a store rooted at
    [dir] and scans it to build the in-memory index. Returns [Error]
    if the directory cannot be created or read. *)

val dir : t -> string

val get : t -> stage:string -> key:string -> 'a option
(** Look up the entry for [(stage, key)]. Any defect in the stored
    file — wrong magic, version stamp from another compiler or store
    revision, truncated payload, integrity-hash mismatch — counts as a
    miss and deletes the file. *)

val put : t -> stage:string -> key:string -> 'a -> unit
(** Store [v] under [(stage, key)], replacing any previous entry, then
    enforce the size bound by evicting least-recently-used entries.
    @raise Invalid_argument if [v] contains a functional value. *)

val mem : t -> stage:string -> key:string -> bool
(** Index-only check; does not read, verify or touch the entry. *)

val stats : t -> stats

val clear : t -> int
(** Delete every entry; returns the number of entries removed. *)
