(** Ambient observation scopes: per-request metrics and trace
    attribution without threading arguments through call sites.

    A scope bundles a label with its own {!Metrics.registry}. While a
    scope is entered on a domain ({!with_scope}), every write the
    instrumented libraries make to a {!Metrics.global} instrument
    {e also} lands in the same-named instrument of the innermost
    scope's registry — so the global registry remains the process-wide
    roll-up and each scope sees exactly its own share. Scopes nest
    (innermost wins) and are domain-local; {!capture}/{!run_with} move
    the ambient state onto {!Domain_pool} workers, which also parents
    worker trace spans under the submitting domain's open span.

    Scopes are keyed by label and retained for the process lifetime so
    {!to_openmetrics} can report a scope after its request completed;
    entering the same label twice (e.g. [Pipeline.analyze] then
    [simulate] of one session) accumulates into one registry. *)

type scope

val scope : string -> scope
(** Get or create the scope with this label. *)

val scope_label : scope -> string
val scope_registry : scope -> Metrics.registry

val with_scope : ?label:string -> (unit -> 'a) -> 'a
(** Run the thunk with the labelled scope active on the calling domain
    (creating it on first use; a fresh [scope-N] label when omitted).
    Also opens a [scope:<label>] trace span so everything recorded
    inside nests under the scope in trace exports. *)

val in_scope : scope -> (unit -> 'a) -> 'a
(** Like {!with_scope} for an already-created scope. *)

val current : unit -> scope option
(** The innermost scope active on the calling domain, if any. *)

val scopes : unit -> scope list
(** Every scope created so far, in creation order. *)

val reset_scopes : unit -> unit
(** Forget all scopes (tests; daemons rotating exposition windows). *)

(** {1 Cross-domain propagation} *)

type ctx
(** A snapshot of the calling domain's ambient state: scope stack and
    current trace-span parent. *)

val capture : unit -> ctx

val run_with : ctx -> (unit -> 'a) -> 'a
(** Run the thunk under the captured ambient state (used by
    {!Domain_pool.run_tasks} around every task), restoring the
    worker's previous state after. *)

(** {1 Consumers} *)

val to_openmetrics : unit -> string
(** OpenMetrics exposition of the global roll-up plus every scope,
    scopes labelled [scope="<label>"], each metric family declared
    once. *)

val dump_flight_recorder : unit -> Metrics.Json.t
(** Snapshot of the always-on flight recorder as a
    [polychrony-flight/v1] JSON object: per-domain rings of the most
    recent span/instant/diag events with overwrite counts. Attached
    automatically to [--format json] error output by the CLI. *)

val flight_recorder_to_string : unit -> string
(** {!dump_flight_recorder} rendered as compact JSON. *)
