(** Interned, per-category unique identifiers.

    A {!Symbol} identifies a string; a UID identifies an {e entity} of
    a given category — a process model, a signal, an AADL thread, a
    port. Each category has its own dense id space (so category tables
    stay flat arrays) and its own freshness counter (so generated
    entities can be given names that provably collide with nothing
    interned before).

    All operations are safe under {!Domain_pool} workers: interning
    serializes on a per-category mutex, resolution is a lock-free read
    of atomically published state (same protocol as {!Symbol}). *)

module type S = sig
  type t

  val intern : string -> t
  (** Stable interning: two calls with equal strings return the same
      UID of this category. *)

  val fresh : string -> t
  (** A UID distinct from every previously interned or fresh UID of
      this category; its {!name} starts with the given base. *)

  val name : t -> string
  (** The entity's name (the interned string). *)

  val sym : t -> Symbol.t
  (** The name as a global symbol (interned on demand). *)

  val id : t -> int
  (** Dense per-category id: [0 <= id u < count ()]. *)

  val count : unit -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  (** UID-indexed growable arrays, like {!Symbol.Tbl}. *)
  module Tbl : sig
    type uid := t
    type 'a t

    val create : ?size:int -> 'a -> 'a t
    val get : 'a t -> uid -> 'a
    val set : 'a t -> uid -> 'a -> unit
  end

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Process : S
(** SIGNAL process models. *)

module Signal : S
(** SIGNAL signals (declared variables of generated programs). *)

module Thread : S
(** AADL component instances (threads, processors, data — keyed by
    instance path). *)

module Port : S
(** AADL feature instances (keyed by feature path). *)
