(** Monotonic time source shared by {!Metrics} and {!Tracing}.

    Wall clocks ([Unix.gettimeofday]) can step backwards under NTP
    correction, which turns span durations negative or wildly wrong;
    every duration measured in this codebase goes through this module
    instead. *)

external now_ns : unit -> int = "putil_clock_monotonic_ns" [@@noalloc]
(** Nanoseconds from an arbitrary fixed origin (system boot on Linux).
    Monotone non-decreasing within a process; meaningless across
    processes. Does not allocate. *)
