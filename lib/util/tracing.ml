(* Per-domain event buffers behind one atomic enabled flag. The
   recording side is wait-free: a domain only ever appends to its own
   buffer (discovered through domain-local storage), so explorer
   workers can emit spans concurrently with the main domain. The
   reading side (export, reset) walks every buffer and is only called
   once parallel sections have joined. *)

type arg =
  | Abool of bool
  | Aint of int
  | Afloat of float
  | Astr of string

type event =
  | Begin of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
      id : int;     (* process-unique span id, 0 when unknown *)
      parent : int; (* parent span id, 0 = root; may live on another
                       domain when the span was submitted through
                       Domain_pool under an observation scope *)
    }
  | End of { ts_ns : int }
  | Inst of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | Lane_span of {
      lane : string; name : string; cat : string;
      ts_us : int; dur_us : int; args : (string * arg) list;
    }
  | Lane_inst of {
      lane : string; name : string; cat : string; ts_us : int;
      args : (string * arg) list;
    }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type buffer = {
  dom : int;
  mutable evs : event array;
  mutable len : int;
}

let dummy_event = End { ts_ns = 0 }

(* every buffer ever created, so events survive their domain's death
   (explorer pools are shut down before export) *)
let buffers : buffer list ref = ref []
let buffers_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int);
          evs = Array.make 256 dummy_event; len = 0 }
      in
      Mutex.lock buffers_lock;
      buffers := b :: !buffers;
      Mutex.unlock buffers_lock;
      b)

let push ev =
  let b = Domain.DLS.get dls_key in
  let cap = Array.length b.evs in
  if b.len = cap then begin
    let evs = Array.make (2 * cap) dummy_event in
    Array.blit b.evs 0 evs 0 cap;
    b.evs <- evs
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let reset () =
  Mutex.lock buffers_lock;
  List.iter (fun b -> b.len <- 0) !buffers;
  Mutex.unlock buffers_lock

(* ------------------------------------------------------------------ *)
(* Span identity and cross-domain parenting                            *)
(* ------------------------------------------------------------------ *)

(* Span ids are process-unique so a worker span can name its parent on
   another domain. Each domain tracks its open-span stack plus a [base]
   context installed by [with_context] — the parent a pool worker
   inherits from the submitting domain. *)
let span_seq = Atomic.make 0

type dctx = { mutable open_spans : int list; mutable base : int }

let dls_ctx = Domain.DLS.new_key (fun () -> { open_spans = []; base = 0 })

type context = int

let no_context : context = 0

let current_context () =
  let d = Domain.DLS.get dls_ctx in
  match d.open_spans with id :: _ -> id | [] -> d.base

let with_context ctx f =
  let d = Domain.DLS.get dls_ctx in
  let saved_base = d.base and saved_stack = d.open_spans in
  d.base <- ctx;
  d.open_spans <- [];
  Fun.protect
    ~finally:(fun () ->
      let d = Domain.DLS.get dls_ctx in
      d.base <- saved_base;
      d.open_spans <- saved_stack)
    f

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* Always-on bounded ring of the most recent span/instant/diag events,
   one ring per domain. The writer only touches its own ring (found
   through DLS), so recording is race-free and costs one array store;
   older events are overwritten once the ring is full. A snapshot
   ([flight_events]) is what gets attached to JSON error output so a
   failed run explains itself without re-running under --trace. *)

type fkind = Fspan_begin | Fspan_end | Finstant | Fdiag

type fevent = {
  f_ts_ns : int;
  f_kind : fkind;
  f_name : string;
  f_cat : string;
  f_args : (string * arg) list;
}

let flight_capacity = 256
let flight_flag = Atomic.make true
let set_flight_enabled b = Atomic.set flight_flag b
let flight_enabled () = Atomic.get flight_flag

type fring = {
  f_dom : int;
  slots : fevent option array;
  mutable written : int; (* total events ever recorded on this domain *)
}

let frings : fring list ref = ref []
let frings_lock = Mutex.create ()

let dls_fring =
  Domain.DLS.new_key (fun () ->
      let r =
        { f_dom = (Domain.self () :> int);
          slots = Array.make flight_capacity None; written = 0 }
      in
      Mutex.lock frings_lock;
      frings := r :: !frings;
      Mutex.unlock frings_lock;
      r)

let flight_record f_kind f_name f_cat f_args =
  if Atomic.get flight_flag then begin
    let r = Domain.DLS.get dls_fring in
    r.slots.(r.written mod flight_capacity) <-
      Some { f_ts_ns = Clock.now_ns (); f_kind; f_name; f_cat; f_args };
    r.written <- r.written + 1
  end

let flight_events () =
  Mutex.lock frings_lock;
  let rings = !frings in
  Mutex.unlock frings_lock;
  List.sort (fun a b -> compare a.f_dom b.f_dom) rings
  |> List.filter_map (fun r ->
         if r.written = 0 then None
         else begin
           let kept = min r.written flight_capacity in
           let first = r.written - kept in
           let evs = ref [] in
           for i = r.written - 1 downto first do
             match r.slots.(i mod flight_capacity) with
             | Some e -> evs := e :: !evs
             | None -> ()
           done;
           Some (r.f_dom, first, !evs)
         end)

let flight_reset () =
  Mutex.lock frings_lock;
  List.iter
    (fun r ->
      Array.fill r.slots 0 flight_capacity None;
      r.written <- 0)
    !frings;
  Mutex.unlock frings_lock

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let with_span ?(cat = "toolchain") ?args name f =
  let args = match args with Some a -> a | None -> [] in
  flight_record Fspan_begin name cat args;
  if not (Atomic.get enabled_flag) then
    if Atomic.get flight_flag then
      Fun.protect
        ~finally:(fun () -> flight_record Fspan_end name cat [])
        f
    else f ()
  else begin
    let d = Domain.DLS.get dls_ctx in
    let id = 1 + Atomic.fetch_and_add span_seq 1 in
    let parent = match d.open_spans with p :: _ -> p | [] -> d.base in
    push (Begin { name; cat; ts_ns = Clock.now_ns (); args; id; parent });
    d.open_spans <- id :: d.open_spans;
    Fun.protect
      ~finally:(fun () ->
        let d = Domain.DLS.get dls_ctx in
        (match d.open_spans with _ :: rest -> d.open_spans <- rest | [] -> ());
        flight_record Fspan_end name cat [];
        push (End { ts_ns = Clock.now_ns () }))
      f
  end

let instant ?(cat = "toolchain") ?args name =
  let args = match args with Some a -> a | None -> [] in
  flight_record Finstant name cat args;
  if Atomic.get enabled_flag then
    push (Inst { name; cat; ts_ns = Clock.now_ns (); args })

(* diagnostics feed the flight recorder (never the trace buffers: diag
   emission must not depend on tracing being enabled) *)
let flight_diag ~severity ~code message =
  flight_record Fdiag code "diag"
    [ ("severity", Astr severity); ("message", Astr message) ]

let lane_span ~lane ?(cat = "schedule") ?args ~ts_us ~dur_us name =
  if Atomic.get enabled_flag then
    push
      (Lane_span
         { lane; name; cat; ts_us; dur_us;
           args = Option.value ~default:[] args })

let lane_instant ~lane ?(cat = "schedule") ?args ~ts_us name =
  if Atomic.get enabled_flag then
    push
      (Lane_inst
         { lane; name; cat; ts_us; args = Option.value ~default:[] args })

let events () =
  Mutex.lock buffers_lock;
  let bufs = !buffers in
  Mutex.unlock buffers_lock;
  List.sort (fun a b -> compare a.dom b.dom) bufs
  |> List.filter_map (fun b ->
         if b.len = 0 then None
         else Some (b.dom, Array.to_list (Array.sub b.evs 0 b.len)))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event sink                                             *)
(* ------------------------------------------------------------------ *)

module J = Metrics.Json

let json_of_arg = function
  | Abool b -> J.Bool b
  | Aint n -> J.Int n
  | Afloat f -> J.Float f
  | Astr s -> J.String s

let json_args args =
  if args = [] then []
  else [ ("args", J.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]

let host_pid = 1
let sched_pid = 2

(* ts in fractional µs relative to the earliest host event, so traces
   open near t=0 regardless of system uptime *)
let rel_us t0 ts_ns = float_of_int (ts_ns - t0) /. 1e3

let chrome_events () =
  let per_domain = events () in
  let t0 =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left
          (fun acc ev ->
            match ev with
            | Begin { ts_ns; _ } | Inst { ts_ns; _ } -> min acc ts_ns
            | End _ | Lane_span _ | Lane_inst _ -> acc)
          acc evs)
      max_int per_domain
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  (* lanes are interned in first-emission order: deterministic for a
     deterministic simulation *)
  let lane_tids = Hashtbl.create 16 in
  let lane_order = ref [] in
  let lane_tid lane =
    match Hashtbl.find_opt lane_tids lane with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length lane_tids + 1 in
      Hashtbl.add lane_tids lane tid;
      lane_order := (lane, tid) :: !lane_order;
      tid
  in
  let domains_seen = ref [] in
  List.iter
    (fun (dom, evs) ->
      let hosted = ref false in
      (* pair Begin/End into X complete events with an explicit stack;
         an unclosed span (export mid-run) closes at the last event *)
      let last_ts =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Begin { ts_ns; _ } | Inst { ts_ns; _ } | End { ts_ns } ->
              max acc ts_ns
            | Lane_span _ | Lane_inst _ -> acc)
          t0 evs
      in
      let stack = ref [] in
      (* span identity rides along in args so cross-domain parent links
         (pool workers under a submitting scope) survive the export *)
      let id_args id parent args =
        let ids =
          if id = 0 then []
          else if parent = 0 then [ ("span_id", Aint id) ]
          else [ ("span_id", Aint id); ("parent_span_id", Aint parent) ]
        in
        ids @ args
      in
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; cat; ts_ns; args; id; parent } ->
            hosted := true;
            stack := (name, cat, ts_ns, id_args id parent args) :: !stack
          | End { ts_ns } -> (
            match !stack with
            | [] -> ()
            | (name, cat, b_ts, args) :: rest ->
              stack := rest;
              emit
                (J.Obj
                   ([ ("name", J.String name);
                      ("cat", J.String cat);
                      ("ph", J.String "X");
                      ("ts", J.Float (rel_us t0 b_ts));
                      ("dur", J.Float (rel_us b_ts ts_ns));
                      ("pid", J.Int host_pid);
                      ("tid", J.Int dom) ]
                   @ json_args args)))
          | Inst { name; cat; ts_ns; args } ->
            hosted := true;
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "i");
                    ("s", J.String "t");
                    ("ts", J.Float (rel_us t0 ts_ns));
                    ("pid", J.Int host_pid);
                    ("tid", J.Int dom) ]
                 @ json_args args))
          | Lane_span { lane; name; cat; ts_us; dur_us; args } ->
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "X");
                    ("ts", J.Int ts_us);
                    ("dur", J.Int dur_us);
                    ("pid", J.Int sched_pid);
                    ("tid", J.Int (lane_tid lane)) ]
                 @ json_args args))
          | Lane_inst { lane; name; cat; ts_us; args } ->
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "i");
                    ("s", J.String "t");
                    ("ts", J.Int ts_us);
                    ("pid", J.Int sched_pid);
                    ("tid", J.Int (lane_tid lane)) ]
                 @ json_args args)))
        evs;
      (* close any still-open spans so the export is always well-formed *)
      List.iter
        (fun (name, cat, b_ts, args) ->
          emit
            (J.Obj
               ([ ("name", J.String name);
                  ("cat", J.String cat);
                  ("ph", J.String "X");
                  ("ts", J.Float (rel_us t0 b_ts));
                  ("dur", J.Float (rel_us b_ts last_ts));
                  ("pid", J.Int host_pid);
                  ("tid", J.Int dom) ]
               @ json_args args)))
        !stack;
      if !hosted then domains_seen := dom :: !domains_seen)
    per_domain;
  (* metadata: name the two processes and every lane *)
  let meta name pid tid value =
    J.Obj
      [ ("name", J.String name);
        ("ph", J.String "M");
        ("pid", J.Int pid);
        ("tid", J.Int tid);
        ("args", J.Obj [ ("name", J.String value) ]) ]
  in
  let metas =
    meta "process_name" host_pid 0 "toolchain (host time)"
    :: meta "process_name" sched_pid 0 "schedule (logical time, us)"
    :: List.rev_map
         (fun dom ->
           meta "thread_name" host_pid dom (Printf.sprintf "domain %d" dom))
         !domains_seen
    @ List.rev_map
        (fun (lane, tid) -> meta "thread_name" sched_pid tid lane)
        !lane_order
  in
  metas @ List.rev !out

let to_chrome () =
  J.to_string
    (J.Obj
       [ ("traceEvents", J.Arr (chrome_events ()));
         ("displayTimeUnit", J.String "ms") ])

(* ------------------------------------------------------------------ *)
(* Text sink                                                           *)
(* ------------------------------------------------------------------ *)

let pp_dur_ns ppf ns =
  let f = float_of_int ns in
  if f < 1e3 then Format.fprintf ppf "%d ns" ns
  else if f < 1e6 then Format.fprintf ppf "%.1f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.1f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp_arg ppf (k, v) =
  match v with
  | Abool b -> Format.fprintf ppf "%s=%b" k b
  | Aint n -> Format.fprintf ppf "%s=%d" k n
  | Afloat f -> Format.fprintf ppf "%s=%g" k f
  | Astr s -> Format.fprintf ppf "%s=%s" k s

let pp_args ppf = function
  | [] -> ()
  | args ->
    Format.fprintf ppf " {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_arg)
      args

let to_text () =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  let lanes = Hashtbl.create 16 in
  let lane_order = ref [] in
  let lane_events lane =
    match Hashtbl.find_opt lanes lane with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add lanes lane r;
      lane_order := lane :: !lane_order;
      r
  in
  List.iter
    (fun (dom, evs) ->
      let hosted =
        List.exists
          (function Begin _ | Inst _ -> true | _ -> false)
          evs
      in
      if hosted then Format.fprintf ppf "[toolchain] domain %d@." dom;
      let depth = ref 0 in
      (* duration of a span = ts of the matching End; found by scanning
         forward counting nesting *)
      let arr = Array.of_list evs in
      let end_of i =
        let rec go j d =
          if j >= Array.length arr then None
          else
            match arr.(j) with
            | Begin _ -> go (j + 1) (d + 1)
            | End { ts_ns } -> if d = 0 then Some ts_ns else go (j + 1) (d - 1)
            | _ -> go (j + 1) d
        in
        go (i + 1) 0
      in
      Array.iteri
        (fun i ev ->
          match ev with
          | Begin { name; ts_ns; args; _ } ->
            let dur =
              match end_of i with
              | Some e -> e - ts_ns
              | None -> 0
            in
            Format.fprintf ppf "%s%s (%a)%a@."
              (String.make (2 * (!depth + 1)) ' ')
              name pp_dur_ns dur pp_args args;
            incr depth
          | End _ -> if !depth > 0 then decr depth
          | Inst { name; args; _ } ->
            Format.fprintf ppf "%s@%s%a@."
              (String.make (2 * (!depth + 1)) ' ')
              name pp_args args
          | Lane_span { lane; name; ts_us; dur_us; args; _ } ->
            lane_events lane
            := (ts_us,
                Format.asprintf "%d..%d us %s%a" ts_us (ts_us + dur_us) name
                  pp_args args)
               :: !(lane_events lane)
          | Lane_inst { lane; name; ts_us; args; _ } ->
            lane_events lane
            := (ts_us, Format.asprintf "%d us %s%a" ts_us name pp_args args)
               :: !(lane_events lane))
        arr)
    (events ());
  List.iter
    (fun lane ->
      Format.fprintf ppf "[schedule] %s@." lane;
      List.iter
        (fun (_, line) -> Format.fprintf ppf "  %s@." line)
        (List.stable_sort
           (fun (a, _) (b, _) -> compare a b)
           (List.rev !(Hashtbl.find lanes lane))))
    (List.rev !lane_order);
  Format.pp_print_flush ppf ();
  Buffer.contents b

let write ~format path =
  let s = match format with `Chrome -> to_chrome () | `Text -> to_text () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      if format = `Text then () else output_char oc '\n')
