(* Per-domain event buffers behind one atomic enabled flag. The
   recording side is wait-free: a domain only ever appends to its own
   buffer (discovered through domain-local storage), so explorer
   workers can emit spans concurrently with the main domain. The
   reading side (export, reset) walks every buffer and is only called
   once parallel sections have joined. *)

type arg =
  | Abool of bool
  | Aint of int
  | Afloat of float
  | Astr of string

type event =
  | Begin of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | End of { ts_ns : int }
  | Inst of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | Lane_span of {
      lane : string; name : string; cat : string;
      ts_us : int; dur_us : int; args : (string * arg) list;
    }
  | Lane_inst of {
      lane : string; name : string; cat : string; ts_us : int;
      args : (string * arg) list;
    }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type buffer = {
  dom : int;
  mutable evs : event array;
  mutable len : int;
}

let dummy_event = End { ts_ns = 0 }

(* every buffer ever created, so events survive their domain's death
   (explorer pools are shut down before export) *)
let buffers : buffer list ref = ref []
let buffers_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int);
          evs = Array.make 256 dummy_event; len = 0 }
      in
      Mutex.lock buffers_lock;
      buffers := b :: !buffers;
      Mutex.unlock buffers_lock;
      b)

let push ev =
  let b = Domain.DLS.get dls_key in
  let cap = Array.length b.evs in
  if b.len = cap then begin
    let evs = Array.make (2 * cap) dummy_event in
    Array.blit b.evs 0 evs 0 cap;
    b.evs <- evs
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let reset () =
  Mutex.lock buffers_lock;
  List.iter (fun b -> b.len <- 0) !buffers;
  Mutex.unlock buffers_lock

let with_span ?(cat = "toolchain") ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let args = Option.value ~default:[] args in
    push (Begin { name; cat; ts_ns = Clock.now_ns (); args });
    Fun.protect
      ~finally:(fun () -> push (End { ts_ns = Clock.now_ns () }))
      f
  end

let instant ?(cat = "toolchain") ?args name =
  if Atomic.get enabled_flag then
    push
      (Inst
         { name; cat; ts_ns = Clock.now_ns ();
           args = Option.value ~default:[] args })

let lane_span ~lane ?(cat = "schedule") ?args ~ts_us ~dur_us name =
  if Atomic.get enabled_flag then
    push
      (Lane_span
         { lane; name; cat; ts_us; dur_us;
           args = Option.value ~default:[] args })

let lane_instant ~lane ?(cat = "schedule") ?args ~ts_us name =
  if Atomic.get enabled_flag then
    push
      (Lane_inst
         { lane; name; cat; ts_us; args = Option.value ~default:[] args })

let events () =
  Mutex.lock buffers_lock;
  let bufs = !buffers in
  Mutex.unlock buffers_lock;
  List.sort (fun a b -> compare a.dom b.dom) bufs
  |> List.filter_map (fun b ->
         if b.len = 0 then None
         else Some (b.dom, Array.to_list (Array.sub b.evs 0 b.len)))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event sink                                             *)
(* ------------------------------------------------------------------ *)

module J = Metrics.Json

let json_of_arg = function
  | Abool b -> J.Bool b
  | Aint n -> J.Int n
  | Afloat f -> J.Float f
  | Astr s -> J.String s

let json_args args =
  if args = [] then []
  else [ ("args", J.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]

let host_pid = 1
let sched_pid = 2

(* ts in fractional µs relative to the earliest host event, so traces
   open near t=0 regardless of system uptime *)
let rel_us t0 ts_ns = float_of_int (ts_ns - t0) /. 1e3

let chrome_events () =
  let per_domain = events () in
  let t0 =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left
          (fun acc ev ->
            match ev with
            | Begin { ts_ns; _ } | Inst { ts_ns; _ } -> min acc ts_ns
            | End _ | Lane_span _ | Lane_inst _ -> acc)
          acc evs)
      max_int per_domain
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  (* lanes are interned in first-emission order: deterministic for a
     deterministic simulation *)
  let lane_tids = Hashtbl.create 16 in
  let lane_order = ref [] in
  let lane_tid lane =
    match Hashtbl.find_opt lane_tids lane with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length lane_tids + 1 in
      Hashtbl.add lane_tids lane tid;
      lane_order := (lane, tid) :: !lane_order;
      tid
  in
  let domains_seen = ref [] in
  List.iter
    (fun (dom, evs) ->
      let hosted = ref false in
      (* pair Begin/End into X complete events with an explicit stack;
         an unclosed span (export mid-run) closes at the last event *)
      let last_ts =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Begin { ts_ns; _ } | Inst { ts_ns; _ } | End { ts_ns } ->
              max acc ts_ns
            | Lane_span _ | Lane_inst _ -> acc)
          t0 evs
      in
      let stack = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; cat; ts_ns; args } ->
            hosted := true;
            stack := (name, cat, ts_ns, args) :: !stack
          | End { ts_ns } -> (
            match !stack with
            | [] -> ()
            | (name, cat, b_ts, args) :: rest ->
              stack := rest;
              emit
                (J.Obj
                   ([ ("name", J.String name);
                      ("cat", J.String cat);
                      ("ph", J.String "X");
                      ("ts", J.Float (rel_us t0 b_ts));
                      ("dur", J.Float (rel_us b_ts ts_ns));
                      ("pid", J.Int host_pid);
                      ("tid", J.Int dom) ]
                   @ json_args args)))
          | Inst { name; cat; ts_ns; args } ->
            hosted := true;
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "i");
                    ("s", J.String "t");
                    ("ts", J.Float (rel_us t0 ts_ns));
                    ("pid", J.Int host_pid);
                    ("tid", J.Int dom) ]
                 @ json_args args))
          | Lane_span { lane; name; cat; ts_us; dur_us; args } ->
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "X");
                    ("ts", J.Int ts_us);
                    ("dur", J.Int dur_us);
                    ("pid", J.Int sched_pid);
                    ("tid", J.Int (lane_tid lane)) ]
                 @ json_args args))
          | Lane_inst { lane; name; cat; ts_us; args } ->
            emit
              (J.Obj
                 ([ ("name", J.String name);
                    ("cat", J.String cat);
                    ("ph", J.String "i");
                    ("s", J.String "t");
                    ("ts", J.Int ts_us);
                    ("pid", J.Int sched_pid);
                    ("tid", J.Int (lane_tid lane)) ]
                 @ json_args args)))
        evs;
      (* close any still-open spans so the export is always well-formed *)
      List.iter
        (fun (name, cat, b_ts, args) ->
          emit
            (J.Obj
               ([ ("name", J.String name);
                  ("cat", J.String cat);
                  ("ph", J.String "X");
                  ("ts", J.Float (rel_us t0 b_ts));
                  ("dur", J.Float (rel_us b_ts last_ts));
                  ("pid", J.Int host_pid);
                  ("tid", J.Int dom) ]
               @ json_args args)))
        !stack;
      if !hosted then domains_seen := dom :: !domains_seen)
    per_domain;
  (* metadata: name the two processes and every lane *)
  let meta name pid tid value =
    J.Obj
      [ ("name", J.String name);
        ("ph", J.String "M");
        ("pid", J.Int pid);
        ("tid", J.Int tid);
        ("args", J.Obj [ ("name", J.String value) ]) ]
  in
  let metas =
    meta "process_name" host_pid 0 "toolchain (host time)"
    :: meta "process_name" sched_pid 0 "schedule (logical time, us)"
    :: List.rev_map
         (fun dom ->
           meta "thread_name" host_pid dom (Printf.sprintf "domain %d" dom))
         !domains_seen
    @ List.rev_map
        (fun (lane, tid) -> meta "thread_name" sched_pid tid lane)
        !lane_order
  in
  metas @ List.rev !out

let to_chrome () =
  J.to_string
    (J.Obj
       [ ("traceEvents", J.Arr (chrome_events ()));
         ("displayTimeUnit", J.String "ms") ])

(* ------------------------------------------------------------------ *)
(* Text sink                                                           *)
(* ------------------------------------------------------------------ *)

let pp_dur_ns ppf ns =
  let f = float_of_int ns in
  if f < 1e3 then Format.fprintf ppf "%d ns" ns
  else if f < 1e6 then Format.fprintf ppf "%.1f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.1f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp_arg ppf (k, v) =
  match v with
  | Abool b -> Format.fprintf ppf "%s=%b" k b
  | Aint n -> Format.fprintf ppf "%s=%d" k n
  | Afloat f -> Format.fprintf ppf "%s=%g" k f
  | Astr s -> Format.fprintf ppf "%s=%s" k s

let pp_args ppf = function
  | [] -> ()
  | args ->
    Format.fprintf ppf " {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_arg)
      args

let to_text () =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  let lanes = Hashtbl.create 16 in
  let lane_order = ref [] in
  let lane_events lane =
    match Hashtbl.find_opt lanes lane with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add lanes lane r;
      lane_order := lane :: !lane_order;
      r
  in
  List.iter
    (fun (dom, evs) ->
      let hosted =
        List.exists
          (function Begin _ | Inst _ -> true | _ -> false)
          evs
      in
      if hosted then Format.fprintf ppf "[toolchain] domain %d@." dom;
      let depth = ref 0 in
      (* duration of a span = ts of the matching End; found by scanning
         forward counting nesting *)
      let arr = Array.of_list evs in
      let end_of i =
        let rec go j d =
          if j >= Array.length arr then None
          else
            match arr.(j) with
            | Begin _ -> go (j + 1) (d + 1)
            | End { ts_ns } -> if d = 0 then Some ts_ns else go (j + 1) (d - 1)
            | _ -> go (j + 1) d
        in
        go (i + 1) 0
      in
      Array.iteri
        (fun i ev ->
          match ev with
          | Begin { name; ts_ns; args; _ } ->
            let dur =
              match end_of i with
              | Some e -> e - ts_ns
              | None -> 0
            in
            Format.fprintf ppf "%s%s (%a)%a@."
              (String.make (2 * (!depth + 1)) ' ')
              name pp_dur_ns dur pp_args args;
            incr depth
          | End _ -> if !depth > 0 then decr depth
          | Inst { name; args; _ } ->
            Format.fprintf ppf "%s@%s%a@."
              (String.make (2 * (!depth + 1)) ' ')
              name pp_args args
          | Lane_span { lane; name; ts_us; dur_us; args; _ } ->
            lane_events lane
            := (ts_us,
                Format.asprintf "%d..%d us %s%a" ts_us (ts_us + dur_us) name
                  pp_args args)
               :: !(lane_events lane)
          | Lane_inst { lane; name; ts_us; args; _ } ->
            lane_events lane
            := (ts_us, Format.asprintf "%d us %s%a" ts_us name pp_args args)
               :: !(lane_events lane))
        arr)
    (events ());
  List.iter
    (fun lane ->
      Format.fprintf ppf "[schedule] %s@." lane;
      List.iter
        (fun (_, line) -> Format.fprintf ppf "  %s@." line)
        (List.stable_sort
           (fun (a, _) (b, _) -> compare a b)
           (List.rev !(Hashtbl.find lanes lane))))
    (List.rev !lane_order);
  Format.pp_print_flush ppf ();
  Buffer.contents b

let write ~format path =
  let s = match format with `Chrome -> to_chrome () | `Text -> to_text () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      if format = `Text then () else output_char oc '\n')
