(* Per-category interners, layered on the same publication protocol as
   {!Symbol}: writers serialize on a mutex and publish the backing
   array then the count with atomic stores; readers load the count
   first, so every id below it is fully published. Each category also
   carries a freshness counter so generated entities can be named
   without colliding with anything interned before. *)

module type S = sig
  type t

  val intern : string -> t
  val fresh : string -> t
  val name : t -> string
  val sym : t -> Symbol.t
  val id : t -> int
  val count : unit -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Tbl : sig
    type uid := t
    type 'a t

    val create : ?size:int -> 'a -> 'a t
    val get : 'a t -> uid -> 'a
    val set : 'a t -> uid -> 'a -> unit
  end

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make () : S = struct
  type t = int

  let names : string array Atomic.t = Atomic.make (Array.make 256 "")
  let count_a = Atomic.make 0
  let table : (string, int) Hashtbl.t = Hashtbl.create 256
  let freshness = Atomic.make 0
  let lock = Mutex.create ()

  (* must hold [lock] *)
  let alloc s =
    let id = Atomic.get count_a in
    let arr = Atomic.get names in
    let arr =
      if id >= Array.length arr then begin
        let bigger = Array.make (2 * Array.length arr) "" in
        Array.blit arr 0 bigger 0 id;
        Atomic.set names bigger;
        bigger
      end
      else arr
    in
    arr.(id) <- s;
    Atomic.set count_a (id + 1);
    Hashtbl.add table s id;
    id

  let intern s =
    Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt table s with
    | Some id -> id
    | None -> alloc s

  let fresh base =
    Mutex.protect lock @@ fun () ->
    let rec pick () =
      let n = Atomic.fetch_and_add freshness 1 in
      let s = Printf.sprintf "%s#%d" base n in
      if Hashtbl.mem table s then pick () else s
    in
    alloc (pick ())

  let name t =
    if t < Atomic.get count_a then (Atomic.get names).(t)
    else invalid_arg "Uid.name: not an interned uid"

  let sym t = Symbol.of_string (name t)
  let id t = t
  let count () = Atomic.get count_a
  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = Int.compare a b
  let hash (t : t) = t
  let pp ppf t = Format.pp_print_string ppf (name t)

  module Tbl = struct
    type uid = t

    type 'a t = {
      default : 'a;
      mutable slots : 'a array;
    }

    let create ?(size = 64) default =
      { default; slots = Array.make (max size 1) default }

    let ensure t i =
      if i >= Array.length t.slots then begin
        let n = ref (2 * Array.length t.slots) in
        while i >= !n do
          n := 2 * !n
        done;
        let bigger = Array.make !n t.default in
        Array.blit t.slots 0 bigger 0 (Array.length t.slots);
        t.slots <- bigger
      end

    let get t (u : uid) =
      if u < Array.length t.slots then t.slots.(u) else t.default

    let set t (u : uid) v =
      ensure t u;
      t.slots.(u) <- v
  end

  module Map = Map.Make (Int)
  module Set = Set.Make (Int)
end

module Process = Make ()
module Signal = Make ()
module Thread = Make ()
module Port = Make ()
