(* Persistent content-addressed cache store. See the interface for the
   format and safety contract. *)

let magic = "POLYCACHE1\n"
let format_version = 1
let suffix = ".pcache"
let default_max_bytes = 64 * 1024 * 1024

(* Per-entry on-disk header, marshalled right after the magic string.
   The payload (h_len bytes, MD5 = h_md5) follows. *)
type header = {
  h_version : int;
  h_ocaml : string;
  h_stage : string;
  h_key : string;
  h_len : int;
  h_md5 : string;
}

type entry = {
  e_file : string;  (* basename inside the store directory *)
  mutable e_bytes : int;  (* whole-file size, for the LRU bound *)
  mutable e_stamp : float;  (* recency; larger = more recently used *)
}

type t = {
  t_dir : string;
  t_max_bytes : int;
  t_index : (string * string, entry) Hashtbl.t;
  t_lock : Mutex.t;
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_writes : int;
  mutable t_corrupt : int;
  mutable t_evictions : int;
  mutable t_tmp_seq : int;
  mutable t_stamp_seq : float;  (* strictly increasing recency source *)
}

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  evictions : int;
}

(* Global counters so the store shows up in --stats reports alongside
   the incr.* pipeline counters. *)
let m_hits = Metrics.counter "cache_store.hits"
let m_misses = Metrics.counter "cache_store.misses"
let m_writes = Metrics.counter "cache_store.writes"
let m_corrupt = Metrics.counter "cache_store.corrupt"
let m_evictions = Metrics.counter "cache_store.evictions"

(* live levels (last opened/mutated store wins), for the OpenMetrics
   exposition *)
let m_entries_g = Metrics.gauge "cache_store.entries"
let m_bytes_g = Metrics.gauge "cache_store.bytes"

let with_lock t f =
  Mutex.lock t.t_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.t_lock) f

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.e_bytes) t.t_index 0

(* refresh the live-level gauges; call with the store lock held after
   any index mutation *)
let update_level_gauges t =
  Metrics.set m_entries_g (Hashtbl.length t.t_index);
  Metrics.set m_bytes_g (total_bytes t)

let dir t = t.t_dir

(* Recency stamps start from the file mtime at open time and move to a
   strictly increasing in-process sequence afterwards, so the LRU order
   is total even when many entries share an mtime. *)
let next_stamp t =
  t.t_stamp_seq <- t.t_stamp_seq +. 1.0;
  t.t_stamp_seq

let entry_basename ~stage ~key =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      stage
  in
  let id = Digest.to_hex (Digest.string (stage ^ "\x00" ^ key)) in
  sanitized ^ "-" ^ id ^ suffix

let entry_path t base = Filename.concat t.t_dir base

(* Read and fully verify one entry file. Returns the payload string.
   Raises on any defect; callers translate that into a miss. *)
let read_verified path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if not (String.equal m magic) then failwith "bad magic";
      let h : header = Marshal.from_channel ic in
      if h.h_version <> format_version then failwith "version mismatch";
      if not (String.equal h.h_ocaml Sys.ocaml_version) then
        failwith "compiler mismatch";
      let payload = really_input_string ic h.h_len in
      if not (String.equal (Digest.string payload) h.h_md5) then
        failwith "integrity hash mismatch";
      (h, payload))

(* Open-time validation: magic, header sanity and length only — the
   payload hash is checked again on every [get], so the scan costs one
   small read per entry instead of a full re-hash of the store. *)
let read_header path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if not (String.equal m magic) then failwith "bad magic";
      let h : header = Marshal.from_channel ic in
      if h.h_version <> format_version then failwith "version mismatch";
      if not (String.equal h.h_ocaml Sys.ocaml_version) then
        failwith "compiler mismatch";
      if in_channel_length ic < pos_in ic + h.h_len then
        failwith "truncated payload";
      h)

let scan t =
  let files = try Sys.readdir t.t_dir with Sys_error _ -> [||] in
  Array.iter
    (fun base ->
      if Filename.check_suffix base suffix then begin
        let path = entry_path t base in
        match
          let st = Unix.stat path in
          let h = read_header path in
          (st, h)
        with
        | st, h ->
          Hashtbl.replace t.t_index (h.h_stage, h.h_key)
            { e_file = base; e_bytes = st.Unix.st_size; e_stamp = st.Unix.st_mtime };
          t.t_stamp_seq <- Float.max t.t_stamp_seq st.Unix.st_mtime
        | exception _ ->
          (* Damaged or foreign file: count it and clean it up. *)
          t.t_corrupt <- t.t_corrupt + 1;
          Metrics.incr m_corrupt;
          (try Sys.remove path with Sys_error _ -> ())
      end)
    files

let open_store ?(max_bytes = default_max_bytes) dir =
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  match
    mkdir_p dir;
    if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory")
  with
  | () ->
    let t =
      { t_dir = dir; t_max_bytes = max_bytes;
        t_index = Hashtbl.create 64; t_lock = Mutex.create ();
        t_hits = 0; t_misses = 0; t_writes = 0; t_corrupt = 0;
        t_evictions = 0; t_tmp_seq = 0; t_stamp_seq = 0.0 }
    in
    scan t;
    update_level_gauges t;
    Ok t
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let drop_entry t k e =
  Hashtbl.remove t.t_index k;
  try Sys.remove (entry_path t e.e_file) with Sys_error _ -> ()

let evict_to_bound t =
  let rec loop () =
    if total_bytes t > t.t_max_bytes && Hashtbl.length t.t_index > 1 then begin
      (* Evict the least recently used entry (never the one just
         written: it carries the freshest stamp). *)
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, e') when e'.e_stamp <= e.e_stamp -> acc
            | _ -> Some (k, e))
          t.t_index None
      in
      match victim with
      | None -> ()
      | Some (k, e) ->
        drop_entry t k e;
        t.t_evictions <- t.t_evictions + 1;
        Metrics.incr m_evictions;
        loop ()
    end
  in
  loop ()

let get t ~stage ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.t_index (stage, key) with
      | None ->
        t.t_misses <- t.t_misses + 1;
        Metrics.incr m_misses;
        None
      | Some e -> (
        let path = entry_path t e.e_file in
        match read_verified path with
        | h, payload
          when String.equal h.h_stage stage && String.equal h.h_key key -> (
          match Marshal.from_string payload 0 with
          | v ->
            e.e_stamp <- next_stamp t;
            (* Best-effort mtime touch so a later open sees the same
               recency order. *)
            (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
            t.t_hits <- t.t_hits + 1;
            Metrics.incr m_hits;
            Some v
          | exception _ ->
            t.t_corrupt <- t.t_corrupt + 1;
            Metrics.incr m_corrupt;
            drop_entry t (stage, key) e;
            update_level_gauges t;
            t.t_misses <- t.t_misses + 1;
            Metrics.incr m_misses;
            None)
        | _ | (exception _) ->
          t.t_corrupt <- t.t_corrupt + 1;
          Metrics.incr m_corrupt;
          drop_entry t (stage, key) e;
          update_level_gauges t;
          t.t_misses <- t.t_misses + 1;
          Metrics.incr m_misses;
          None))

let put t ~stage ~key v =
  let payload =
    try Marshal.to_string v [ Marshal.No_sharing ]
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf
           "Cache_store.put: stage %S: value contains a closure \
            (functional value); store payloads must be pure data"
           stage)
  in
  with_lock t (fun () ->
      let header =
        { h_version = format_version; h_ocaml = Sys.ocaml_version;
          h_stage = stage; h_key = key; h_len = String.length payload;
          h_md5 = Digest.string payload }
      in
      let base = entry_basename ~stage ~key in
      t.t_tmp_seq <- t.t_tmp_seq + 1;
      let tmp =
        Filename.concat t.t_dir
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) t.t_tmp_seq)
      in
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            Marshal.to_channel oc header [];
            output_string oc payload);
        Sys.rename tmp (entry_path t base)
      with
      | () ->
        let bytes =
          try (Unix.stat (entry_path t base)).Unix.st_size
          with Unix.Unix_error _ -> String.length payload
        in
        Hashtbl.replace t.t_index (stage, key)
          { e_file = base; e_bytes = bytes; e_stamp = next_stamp t };
        t.t_writes <- t.t_writes + 1;
        Metrics.incr m_writes;
        evict_to_bound t;
        update_level_gauges t
      | exception (Sys_error _ | Unix.Unix_error _) ->
        (* Disk-level failure degrades to "not cached". *)
        (try Sys.remove tmp with Sys_error _ -> ()))

let mem t ~stage ~key =
  with_lock t (fun () -> Hashtbl.mem t.t_index (stage, key))

let stats t =
  with_lock t (fun () ->
      { entries = Hashtbl.length t.t_index; bytes = total_bytes t;
        hits = t.t_hits; misses = t.t_misses; writes = t.t_writes;
        corrupt = t.t_corrupt; evictions = t.t_evictions })

let clear t =
  with_lock t (fun () ->
      let n = Hashtbl.length t.t_index in
      Hashtbl.iter (fun _ e ->
          try Sys.remove (entry_path t e.e_file) with Sys_error _ -> ())
        t.t_index;
      Hashtbl.reset t.t_index;
      update_level_gauges t;
      n)
