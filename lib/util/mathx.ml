exception Overflow of string

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

(* [abs min_int] is still negative: reject it up front so the checked
   multiply below only ever sees non-negative operands. *)
let checked_abs ctx a =
  if a = min_int then raise (Overflow (ctx ^ ": operand is min_int"))
  else abs a

let mul_ovf a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then
      raise
        (Overflow (Printf.sprintf "lcm: %d * %d exceeds native int range" a b))
    else p

let lcm a b =
  if a = 0 || b = 0 then 0
  else
    let a = checked_abs "lcm" a and b = checked_abs "lcm" b in
    mul_ovf (a / gcd a b) b

let lcm_list = List.fold_left lcm 1

let gcd_list = List.fold_left gcd 0

let rec egcd a b =
  if b = 0 then (abs a, (if a < 0 then -1 else 1), 0)
  else
    let g, u, v = egcd b (a mod b) in
    (g, v, u - (a / b) * v)

let solve_diophantine a b c =
  let g, u, v = egcd a b in
  if g = 0 then if c = 0 then Some (0, 0) else None
  else if c mod g <> 0 then None
  else Some (u * (c / g), v * (c / g))

let floor_div a b =
  assert (b > 0);
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let ceil_div a b =
  assert (b > 0);
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let pos_mod a b =
  assert (b > 0);
  let r = a mod b in
  if r < 0 then r + b else r

(* Shortest decimal form that parses back to the same float: probe
   increasing precision, falling back to the 17 significant digits
   that are always sufficient for a binary64. *)
let float_to_string f =
  if f <> f then "nan"
  else if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
