(** Zero-dependency structured tracing: hierarchical host-time spans,
    point events, and logical-time schedule lanes, exported as Chrome
    trace-event JSON (loadable in Perfetto / [chrome://tracing]) or as
    a compact text tree.

    Two tracks are recorded:

    - {b host time} (pid 1 in the Chrome export): spans opened with
      {!with_span} around toolchain stages (parse, check, translate,
      clock calculus, schedule synthesis, compile, simulate). Each
      domain writes to its own buffer, so spans emitted from
      {!Domain_pool} workers are recorded without locking; one Chrome
      thread lane per domain.
    - {b logical time} (pid 2): spans and instants stamped with
      microseconds of simulated time via {!lane_span} /
      {!lane_instant}, one Chrome thread lane per AADL thread. This is
      the paper's scheduling timeline (dispatch, input freeze, compute,
      output send, deadline) reconstructed from an actual simulation.

    Tracing is globally off by default. Every emitting entry point
    first reads one atomic flag and returns immediately when disabled,
    so instrumented hot paths cost one load and no allocation.
    Recording is multi-domain-safe; {!export}, {!events} and {!reset}
    must not race with emitting domains (collect after the parallel
    section joins, as {!Domain_pool.run_tasks} does). *)

type arg =
  | Abool of bool
  | Aint of int
  | Afloat of float
  | Astr of string

val set_enabled : bool -> unit
(** Turn recording on or off. Turning it on does not clear previously
    recorded events; call {!reset} for a fresh trace. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop every recorded event (all domains), keeping the buffers. *)

(** {1 Recording} *)

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] as one host-time span on the calling
    domain's lane. Spans nest by call structure (the span closes even
    if [f] raises). When tracing is disabled this is [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A point event at the current host time. *)

val lane_span :
  lane:string -> ?cat:string -> ?args:(string * arg) list ->
  ts_us:int -> dur_us:int -> string -> unit
(** A logical-time span [\[ts_us, ts_us + dur_us\]] on the named
    schedule lane (one lane per AADL thread). *)

val lane_instant :
  lane:string -> ?cat:string -> ?args:(string * arg) list ->
  ts_us:int -> string -> unit
(** A logical-time point event on the named schedule lane. *)

(** {1 Reading} *)

type event =
  | Begin of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | End of { ts_ns : int }
  | Inst of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | Lane_span of {
      lane : string; name : string; cat : string;
      ts_us : int; dur_us : int; args : (string * arg) list;
    }
  | Lane_inst of {
      lane : string; name : string; cat : string; ts_us : int;
      args : (string * arg) list;
    }

val events : unit -> (int * event list) list
(** Recorded events per domain, domains in ascending id order, events
    in emission order. [Begin]/[End] pairs nest within a domain. The
    structured view the tests and the golden snapshot consume. *)

val to_chrome : unit -> string
(** The whole trace as a Chrome trace-event JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Host spans
    become ["X"] complete events under pid 1 (one tid per domain, ts
    relative to the earliest host event, in µs); lane events become
    ["X"]/["i"] events under pid 2 with their logical microsecond
    timestamps; process and thread names ride on ["M"] metadata
    events. RFC 8259-conformant (strings escaped via the same writer
    as {!Metrics.Json}). *)

val to_text : unit -> string
(** Compact human-readable tree: host spans indented by nesting with
    durations, then one block per schedule lane with its timeline. *)

val write : format:[ `Chrome | `Text ] -> string -> unit
(** Render with {!to_chrome} or {!to_text} and write to the path. *)
