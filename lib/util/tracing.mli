(** Zero-dependency structured tracing: hierarchical host-time spans,
    point events, and logical-time schedule lanes, exported as Chrome
    trace-event JSON (loadable in Perfetto / [chrome://tracing]) or as
    a compact text tree.

    Two tracks are recorded:

    - {b host time} (pid 1 in the Chrome export): spans opened with
      {!with_span} around toolchain stages (parse, check, translate,
      clock calculus, schedule synthesis, compile, simulate). Each
      domain writes to its own buffer, so spans emitted from
      {!Domain_pool} workers are recorded without locking; one Chrome
      thread lane per domain.
    - {b logical time} (pid 2): spans and instants stamped with
      microseconds of simulated time via {!lane_span} /
      {!lane_instant}, one Chrome thread lane per AADL thread. This is
      the paper's scheduling timeline (dispatch, input freeze, compute,
      output send, deadline) reconstructed from an actual simulation.

    Tracing is globally off by default. Every emitting entry point
    first reads one atomic flag and returns immediately when disabled
    (an always-on bounded {{!section-flight}flight recorder} still
    keeps the most recent events), so instrumented hot paths cost one
    load per flag and no unbounded allocation. Recording is
    multi-domain-safe; {!export}, {!events} and {!reset} must not race
    with emitting domains (collect after the parallel section joins,
    as {!Domain_pool.run_tasks} does). *)

type arg =
  | Abool of bool
  | Aint of int
  | Afloat of float
  | Astr of string

val set_enabled : bool -> unit
(** Turn recording on or off. Turning it on does not clear previously
    recorded events; call {!reset} for a fresh trace. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop every recorded event (all domains), keeping the buffers. *)

(** {1 Recording} *)

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] as one host-time span on the calling
    domain's lane. Spans nest by call structure (the span closes even
    if [f] raises). When tracing is disabled this is [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A point event at the current host time. *)

val lane_span :
  lane:string -> ?cat:string -> ?args:(string * arg) list ->
  ts_us:int -> dur_us:int -> string -> unit
(** A logical-time span [\[ts_us, ts_us + dur_us\]] on the named
    schedule lane (one lane per AADL thread). *)

val lane_instant :
  lane:string -> ?cat:string -> ?args:(string * arg) list ->
  ts_us:int -> string -> unit
(** A logical-time point event on the named schedule lane. *)

(** {1 Span context}

    Every recorded span carries a process-unique id and the id of its
    parent. Within a domain parents follow call nesting; across
    domains the parent is whatever context {!with_context} installed —
    {!Domain_pool.run_tasks} captures the submitting domain's context
    so worker spans nest under the span that submitted the batch
    instead of being orphaned. *)

type context
(** An opaque parent handle: the innermost open span of some domain,
    or the no-parent context. *)

val no_context : context

val current_context : unit -> context
(** The calling domain's innermost open span (or its installed base
    context when no span is open). *)

val with_context : context -> (unit -> 'a) -> 'a
(** Run the thunk with [context] as the parent for spans it opens at
    top level on this domain; restores the previous context after. *)

(** {1 Reading} *)

type event =
  | Begin of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
      id : int;     (** process-unique span id, 0 when unknown *)
      parent : int; (** parent span id, 0 = root; possibly recorded on
                        another domain *)
    }
  | End of { ts_ns : int }
  | Inst of {
      name : string; cat : string; ts_ns : int;
      args : (string * arg) list;
    }
  | Lane_span of {
      lane : string; name : string; cat : string;
      ts_us : int; dur_us : int; args : (string * arg) list;
    }
  | Lane_inst of {
      lane : string; name : string; cat : string; ts_us : int;
      args : (string * arg) list;
    }

val events : unit -> (int * event list) list
(** Recorded events per domain, domains in ascending id order, events
    in emission order. [Begin]/[End] pairs nest within a domain. The
    structured view the tests and the golden snapshot consume. *)

val to_chrome : unit -> string
(** The whole trace as a Chrome trace-event JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Host spans
    become ["X"] complete events under pid 1 (one tid per domain, ts
    relative to the earliest host event, in µs); lane events become
    ["X"]/["i"] events under pid 2 with their logical microsecond
    timestamps; process and thread names ride on ["M"] metadata
    events. RFC 8259-conformant (strings escaped via the same writer
    as {!Metrics.Json}). *)

val to_text : unit -> string
(** Compact human-readable tree: host spans indented by nesting with
    durations, then one block per schedule lane with its timeline. *)

val write : format:[ `Chrome | `Text ] -> string -> unit
(** Render with {!to_chrome} or {!to_text} and write to the path. *)

(** {1:flight Flight recorder}

    A bounded ring of the most recent span/instant/diagnostic events,
    one ring per domain, on by default even when tracing is disabled.
    Each domain writes only its own ring (no locks, one array store
    per event); once full, the oldest events are overwritten. The
    snapshot is attached to [--format json] error output so a failed
    run carries its own recent history. *)

type fkind = Fspan_begin | Fspan_end | Finstant | Fdiag

type fevent = {
  f_ts_ns : int;
  f_kind : fkind;
  f_name : string;
  f_cat : string;
  f_args : (string * arg) list;
}

val flight_capacity : int
(** Ring size per domain (events kept before overwrite). *)

val set_flight_enabled : bool -> unit
(** Turn the recorder off (or back on); it starts enabled. *)

val flight_enabled : unit -> bool

val flight_diag : severity:string -> code:string -> string -> unit
(** Record a diagnostic event (called by {!Diag} on every diagnostic,
    so the recorder sees errors even with tracing disabled). *)

val flight_events : unit -> (int * int * fevent list) list
(** Per-domain snapshot [(domain, dropped, events)]: [dropped] is how
    many older events were overwritten, [events] the surviving ring
    contents in emission order. Domains in ascending id order. *)

val flight_reset : unit -> unit
(** Clear every ring (tests). *)
