(* Ambient observation scopes: one labelled Metrics registry + trace
   context per pipeline session (later: per daemon request). Entering a
   scope pushes its registry on the domain-local ambient stack, so
   every instrumented library attributes to the scope with zero
   call-site change; [capture]/[run_with] move the whole ambient state
   across Domain_pool so parallel workers attribute and parent
   correctly. *)

type scope = {
  sc_label : string;
  sc_registry : Metrics.registry;
}

let scope_label s = s.sc_label
let scope_registry s = s.sc_registry

(* Scopes are retained for the lifetime of the process (keyed by
   label) so exposition can report a scope after its request ended; a
   long-running daemon is expected to reuse a bounded label set or
   call [reset_scopes] between exposition windows. *)
let scopes_tbl : (string, scope) Hashtbl.t = Hashtbl.create 16
let scopes_order : string list ref = ref []
let scopes_mu = Mutex.create ()
let scope_seq = Atomic.make 0

let scope label =
  Mutex.protect scopes_mu (fun () ->
      match Hashtbl.find_opt scopes_tbl label with
      | Some s -> s
      | None ->
          let s = { sc_label = label; sc_registry = Metrics.create () } in
          Hashtbl.replace scopes_tbl label s;
          scopes_order := label :: !scopes_order;
          s)

let scopes () =
  Mutex.protect scopes_mu (fun () ->
      List.rev_map (fun l -> Hashtbl.find scopes_tbl l) !scopes_order)

let reset_scopes () =
  Mutex.protect scopes_mu (fun () ->
      Hashtbl.reset scopes_tbl;
      scopes_order := [])

let fresh_label () =
  Printf.sprintf "scope-%d" (1 + Atomic.fetch_and_add scope_seq 1)

let in_scope s f =
  Metrics.ambient_push s.sc_registry;
  Fun.protect
    ~finally:(fun () -> Metrics.ambient_pop ())
    (fun () ->
      Tracing.with_span ~cat:"obs"
        ~args:[ ("scope", Tracing.Astr s.sc_label) ]
        ("scope:" ^ s.sc_label) f)

let with_scope ?label f =
  let label = match label with Some l -> l | None -> fresh_label () in
  in_scope (scope label) f

let current () =
  match Metrics.ambient_stack () with
  | [] -> None
  | top :: _ ->
      (* reverse lookup: the ambient stack stores bare registries so
         Metrics stays Obs-free; scopes are few, the scan is cheap *)
      Mutex.protect scopes_mu (fun () ->
          Hashtbl.fold
            (fun _ s acc ->
              if s.sc_registry == top then Some s else acc)
            scopes_tbl None)

(* ---- cross-domain propagation --------------------------------------- *)

type ctx = {
  cx_ambient : Metrics.registry list;
  cx_parent : Tracing.context;
}

let capture () =
  { cx_ambient = Metrics.ambient_stack ();
    cx_parent = Tracing.current_context () }

let run_with ctx f =
  let saved = Metrics.ambient_stack () in
  Metrics.set_ambient_stack ctx.cx_ambient;
  Fun.protect
    ~finally:(fun () -> Metrics.set_ambient_stack saved)
    (fun () -> Tracing.with_context ctx.cx_parent f)

(* ---- exposition ------------------------------------------------------ *)

let to_openmetrics () =
  Metrics.openmetrics
    (([], Metrics.global)
    :: List.map
         (fun s -> ([ ("scope", s.sc_label) ], s.sc_registry))
         (scopes ()))

(* ---- flight recorder snapshot ---------------------------------------- *)

module J = Metrics.Json

let json_of_arg = function
  | Tracing.Abool b -> J.Bool b
  | Tracing.Aint n -> J.Int n
  | Tracing.Afloat f -> J.Float f
  | Tracing.Astr s -> J.String s

let fkind_name = function
  | Tracing.Fspan_begin -> "span_begin"
  | Tracing.Fspan_end -> "span_end"
  | Tracing.Finstant -> "instant"
  | Tracing.Fdiag -> "diag"

let json_of_fevent (e : Tracing.fevent) =
  J.Obj
    ([ ("ts_ns", J.Int e.f_ts_ns);
       ("kind", J.String (fkind_name e.f_kind));
       ("name", J.String e.f_name);
       ("cat", J.String e.f_cat) ]
    @
    if e.f_args = [] then []
    else
      [ ( "args",
          J.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) e.f_args) ) ])

let dump_flight_recorder () =
  J.Obj
    [ ("schema", J.String "polychrony-flight/v1");
      ("capacity", J.Int Tracing.flight_capacity);
      ( "domains",
        J.Arr
          (List.map
             (fun (dom, dropped, evs) ->
               J.Obj
                 [ ("domain", J.Int dom);
                   ("dropped", J.Int dropped);
                   ("events", J.Arr (List.map json_of_fevent evs)) ])
             (Tracing.flight_events ())) ) ]

let flight_recorder_to_string () = J.to_string (dump_flight_recorder ())
