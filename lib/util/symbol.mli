(** Hash-consed symbols with dense integer ids.

    [of_string] interns a string once for the lifetime of the program;
    the resulting symbol compares, hashes and prints in O(1) (modulo
    the interned string's length for printing). Dense ids make
    symbol-keyed maps flat arrays ({!Tbl}), the representation the
    simulator and the clock calculus index their signal tables with.

    Interning and name lookup are thread-safe: symbols may be created
    and resolved from any domain (the parallel state-space explorer
    compiles processes on worker domains). Interning serializes on a
    mutex; [name]/[interned_count] are lock-free reads of atomically
    published state, so resolving symbols on worker domains never
    contends with the interner. {!Tbl} values themselves are not
    synchronized — share one table across domains only read-only. *)

type t

val of_string : string -> t
(** Intern. Two calls with equal strings return the same symbol. *)

val name : t -> string
(** The interned string. *)

val id : t -> int
(** The dense id: [0 <= id s < interned_count ()], allocated in
    interning order. *)

val interned_count : unit -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Symbol-indexed growable arrays. Reads of symbols never written
    return the creation-time default, including symbols interned after
    the table was created. *)
module Tbl : sig
  type sym := t
  type 'a t

  val create : ?size:int -> 'a -> 'a t
  val get : 'a t -> sym -> 'a
  val set : 'a t -> sym -> 'a -> unit
end
