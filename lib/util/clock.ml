external now_ns : unit -> int = "putil_clock_monotonic_ns" [@@noalloc]
