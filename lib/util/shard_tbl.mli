(** A string-keyed hash table in independently locked shards, for
    tables shared across domains (the explorer's visited-state set).

    Each operation locks exactly one shard, chosen by hashing the key,
    so domains working on disjoint keys rarely contend. {!update} is an
    atomic per-key read-modify-write — enough to express first-writer
    claims and min-merges without a global lock. Operations on
    different keys are independent; there is no whole-table snapshot
    primitive ({!length} sums shard sizes one lock at a time). *)

type 'v t

val create : ?shards:int -> unit -> 'v t
(** [create ~shards ()] with [shards] rounded up to a power of two
    (default 16). *)

val shard_count : 'v t -> int

val find_opt : 'v t -> string -> 'v option
val mem : 'v t -> string -> bool

val update : 'v t -> string -> ('v option -> 'v option) -> unit
(** [update t k f] replaces the binding of [k] by [f (current)],
    atomically for the key: [None] means absent (returning [None]
    removes). [f] runs under the shard lock — keep it short and never
    reenter the table from it. *)

val length : 'v t -> int
val clear : 'v t -> unit
