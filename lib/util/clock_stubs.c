/* Monotonic clock for Putil.Clock. CLOCK_MONOTONIC is immune to NTP
   steps and settimeofday, which wall-clock span timing is not. The
   value is returned as a tagged OCaml int: 62 bits of nanoseconds
   (~146 years of uptime) without allocating. */

#include <caml/mlvalues.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value putil_clock_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return Val_long((long)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value putil_clock_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((long)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  /* fallback: wall clock (pre-POSIX systems only) */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((long)tv.tv_sec * 1000000000 + (long)tv.tv_usec * 1000);
  }
}
#endif
