(** Zero-dependency run metrics: monotonic counters, gauges, span
    timers and simple log-scale histograms, grouped in registries.

    Every instrument is identified by a dotted name ([engine.instants],
    [compile.bdd_nodes], ...); the prefix before the first dot is the
    subsystem and groups lines in the printed report. Instruments are
    created on first use and accumulate for the lifetime of the
    registry; [reset] zeroes them without forgetting their names.

    The default [global] registry is what the instrumented libraries
    (engine, compile, calculus, trans, sched) write into; fresh
    registries are for tests, for callers that need isolation, and for
    the per-request scopes minted by {!Obs.with_scope}.

    Overhead is an atomic fetch-and-add per event and two monotonic
    {!Clock.now_ns} reads per timed span — safe to leave enabled in
    benches, and immune to wall-clock (NTP) steps. Counters, gauges
    and timers are lock-free atomics and histograms shard their
    accumulators by domain id, so every write path is safe from
    several domains concurrently. Instrument creation is also
    domain-safe: lookup is lock-free (one atomic load of an immutable
    map), creation takes a short per-registry mutex.

    {b Ambient scopes.} When an observation scope is active on the
    calling domain (see {!Obs.with_scope}), every write to an
    instrument of the [global] registry also lands in the same-named
    instrument of the innermost scope's registry — per-scope
    attribution with no call-site change. When no scope is active
    anywhere in the process, the extra cost on the write path is a
    single atomic load. *)

type registry

val global : registry
(** Shared registry used by the instrumented libraries. *)

val create : unit -> registry
(** A fresh, empty registry, independent of {!global}. *)

(** {1 Instruments}

    The [?registry] argument defaults to {!global}. Looking up a name
    that already exists with a different instrument kind raises
    [Invalid_argument]. *)

type counter
type gauge
type timer
type histogram

val counter : ?registry:registry -> string -> counter
(** Get or create the monotonic counter [name]. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to a counter. *)

val gauge : ?registry:registry -> string -> gauge
(** Get or create the gauge [name] (a last-write-wins level). *)

val set : gauge -> int -> unit

val max_gauge : gauge -> int -> unit
(** [max_gauge g v] sets [g] to [max v (current value)]. *)

val timer : ?registry:registry -> string -> timer
(** Get or create the span timer [name]: accumulates a span count and
    total elapsed nanoseconds, from which the report derives mean span
    duration and spans/second. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk as one span; the span is recorded even if the thunk
    raises. *)

val add_span_ns : timer -> int -> unit
(** Record one span of a given duration directly. *)

val histogram : ?registry:registry -> string -> histogram
(** Get or create the histogram [name]: tracks count, sum, min, max and
    coarse base-2 magnitude buckets of observed values. *)

val observe : histogram -> float -> unit
(** Record one observation. Domain-safe: observations land in a
    per-domain shard and are merged at read time, so concurrent
    [observe] calls never lose events. *)

(** {1 Ambient scope stack}

    Low-level hooks used by {!Obs}; most callers should use
    [Obs.with_scope] instead. The stack is domain-local: pushing a
    registry makes it the innermost scope for subsequent writes on the
    calling domain only. *)

val ambient_push : registry -> unit
val ambient_pop : unit -> unit

val ambient_stack : unit -> registry list
(** The calling domain's scope stack, innermost first. *)

val set_ambient_stack : registry list -> unit
(** Replace the calling domain's scope stack wholesale (used to
    propagate the submitting domain's scopes into pool workers). *)

(** {1 Reading} *)

type stat =
  | Counter of int
  | Gauge of int
  | Timer of { spans : int; total_ns : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

val snapshot : registry -> (string * stat) list
(** All instruments, sorted by name. *)

val find : registry -> string -> stat option

val counter_value : registry -> string -> int
(** Current value of counter (or gauge) [name]; 0 when absent. *)

val reset : registry -> unit
(** Zero every instrument, keeping the instrument set. *)

val pp : Format.formatter -> registry -> unit
(** Structured text report, one section per dotted-name prefix. Timers
    render count, total, mean and rate (e.g. instants/sec). *)

(** {1 JSON} *)

(** Minimal JSON tree + serializer, so metric snapshots and bench
    records can be emitted without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, RFC 8259-conformant rendering (strings escaped;
      non-finite floats serialized as [null]). *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document (the inverse of {!to_string}, and
      enough of RFC 8259 to read foreign records). Bare integers parse
      as [Int], numbers with a fraction or exponent as [Float]. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k]; [None] for
      missing keys and non-object values. *)

  val to_float : t option -> float option
  (** Numeric coercion helper: [Int]/[Float] to [float]. *)
end

val to_json : registry -> Json.t
(** Snapshot as a JSON object keyed by instrument name. *)

(** {1 OpenMetrics exposition} *)

val to_openmetrics : ?labels:(string * string) list -> registry -> string
(** Prometheus/OpenMetrics text exposition of one registry. Dotted
    names are sanitized to [[a-zA-Z0-9_:]] families; counters expose a
    [_total] sample, timers a [summary] ([_count] + [_sum] in
    seconds), histograms cumulative power-of-two [le] buckets plus
    [_sum]/[_count]. [labels] (e.g. [[("scope", "req-1")]]) ride on
    every sample; label values are escaped per the spec. The document
    ends with [# EOF]. *)

val openmetrics : ((string * string) list * registry) list -> string
(** Merged exposition over several labelled registries: each metric
    family is declared once ([# HELP]/[# TYPE]) followed by one sample
    set per registry that carries it — how {!Obs.to_openmetrics}
    exposes [global] plus every scope without duplicating families. *)
