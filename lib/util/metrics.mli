(** Zero-dependency run metrics: monotonic counters, gauges, span
    timers and simple log-scale histograms, grouped in registries.

    Every instrument is identified by a dotted name ([engine.instants],
    [compile.bdd_nodes], ...); the prefix before the first dot is the
    subsystem and groups lines in the printed report. Instruments are
    created on first use and accumulate for the lifetime of the
    registry; [reset] zeroes them without forgetting their names.

    The default [global] registry is what the instrumented libraries
    (engine, compile, calculus, trans, sched) write into; fresh
    registries are for tests and for callers that need isolation.

    Overhead is an atomic fetch-and-add per event and two monotonic
    {!Clock.now_ns} reads per timed span — safe to leave enabled in
    benches, and immune to wall-clock (NTP) steps. Counters, gauges and timers are lock-free atomics, so the
    instrumented hot paths can run on several domains concurrently
    without losing events; creating instruments concurrently is not
    supported (create them at module-initialization time, as the
    libraries do). Histograms are not synchronized. *)

type registry

val global : registry
(** Shared registry used by the instrumented libraries. *)

val create : unit -> registry
(** A fresh, empty registry, independent of {!global}. *)

(** {1 Instruments}

    The [?registry] argument defaults to {!global}. Looking up a name
    that already exists with a different instrument kind raises
    [Invalid_argument]. *)

type counter
type gauge
type timer
type histogram

val counter : ?registry:registry -> string -> counter
(** Get or create the monotonic counter [name]. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to a counter. *)

val gauge : ?registry:registry -> string -> gauge
(** Get or create the gauge [name] (a last-write-wins level). *)

val set : gauge -> int -> unit

val max_gauge : gauge -> int -> unit
(** [max_gauge g v] sets [g] to [max v (current value)]. *)

val timer : ?registry:registry -> string -> timer
(** Get or create the span timer [name]: accumulates a span count and
    total elapsed nanoseconds, from which the report derives mean span
    duration and spans/second. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk as one span; the span is recorded even if the thunk
    raises. *)

val add_span_ns : timer -> int -> unit
(** Record one span of a given duration directly. *)

val histogram : ?registry:registry -> string -> histogram
(** Get or create the histogram [name]: tracks count, sum, min, max and
    coarse base-2 magnitude buckets of observed values. *)

val observe : histogram -> float -> unit

(** {1 Reading} *)

type stat =
  | Counter of int
  | Gauge of int
  | Timer of { spans : int; total_ns : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

val snapshot : registry -> (string * stat) list
(** All instruments, sorted by name. *)

val find : registry -> string -> stat option

val counter_value : registry -> string -> int
(** Current value of counter (or gauge) [name]; 0 when absent. *)

val reset : registry -> unit
(** Zero every instrument, keeping the instrument set. *)

val pp : Format.formatter -> registry -> unit
(** Structured text report, one section per dotted-name prefix. Timers
    render count, total, mean and rate (e.g. instants/sec). *)

(** {1 JSON} *)

(** Minimal JSON tree + serializer, so metric snapshots and bench
    records can be emitted without external dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, RFC 8259-conformant rendering (strings escaped;
      non-finite floats serialized as [null]). *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document (the inverse of {!to_string}, and
      enough of RFC 8259 to read foreign records). Bare integers parse
      as [Int], numbers with a fraction or exponent as [Float]. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k]; [None] for
      missing keys and non-object values. *)

  val to_float : t option -> float option
  (** Numeric coercion helper: [Int]/[Float] to [float]. *)
end

val to_json : registry -> Json.t
(** Snapshot as a JSON object keyed by instrument name. *)
