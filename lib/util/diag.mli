(** Structured diagnostics: located, coded, accumulating errors shared
    by every pipeline layer (lexing, parsing, AADL legality,
    instantiation, translation, typing, clock calculus, static
    analyses, scheduling, simulation).

    A diagnostic is a severity, a stable error code (e.g.
    [AADL-PARSE-001], [SIG-TYPE-004], [SCHED-INFEAS-001]), an optional
    source span, a message, and optional related spans — used by the
    SIGNAL-level analyses to point back at the AADL construct that
    produced a finding (via [Trans.Traceability]).

    Two renderers are provided: a human-readable one with a source
    excerpt and caret, and an RFC 8259 JSON one ([polychrony-diag/v1]
    schema) built on {!Metrics.Json}. *)

type severity = Note | Warning | Error

val severity_to_string : severity -> string

type span = {
  sp_file : string option;  (** source file, when known *)
  sp_line : int;            (** 1-based; 0 = unknown *)
  sp_col : int;             (** 1-based start column *)
  sp_end_col : int;         (** inclusive end column, >= sp_col *)
}

val span : ?file:string -> ?end_col:int -> line:int -> col:int -> unit -> span
(** [end_col] defaults to [col]. *)

val with_file : string -> span -> span
(** Set the file of a span (idempotent when already set). *)

type related = {
  rel_message : string;
  rel_span : span option;
}

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  related : related list;
}

(** {1 Error-code registry}

    Every code a layer can emit is registered once, at module
    initialisation, with a one-line description. The registry backs the
    [--explain]-style tooling and the test-suite property that every
    emitted diagnostic carries a resolvable code. *)

val code : string -> string -> string
(** [code id description] registers [id] and returns it; registering
    the same id twice with different descriptions raises
    [Invalid_argument]. *)

val describe : string -> string option
val codes : unit -> (string * string) list
(** All registered codes with their descriptions, sorted. *)

(** {1 Construction} *)

val make :
  ?span:span -> ?related:related list -> severity -> code:string ->
  string -> t

val errorf :
  ?span:span -> ?related:related list -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?span:span -> ?related:related list -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val notef :
  ?span:span -> ?related:related list -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

(** {1 Accumulating collector} *)

type collector

val collector : unit -> collector
val add : collector -> t -> unit
val add_list : collector -> t list -> unit
val result : collector -> t list
(** Diagnostics in emission order. *)

val is_empty : collector -> bool

(** {1 Queries} *)

val count : severity -> t list -> int
val has_errors : t list -> bool
val max_severity : t list -> severity option

val sort : t list -> t list
(** Stable order: by file, line, column, then severity (errors
    first), preserving emission order within ties. *)

val exit_code : t list -> int
(** Severity-aware process exit code: [0] when no diagnostic is worse
    than a note, [2] when the worst is a warning, [1] when any error is
    present. *)

(** {1 Rendering} *)

val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
(** One line: [severity[CODE] file:line:col: message], followed by
    indented [related] lines. *)

val to_string : t -> string

val render : ?src:string -> t -> string
(** Multi-line rendering; when [src] (the full source text) is given
    and the diagnostic has a span, includes the offending line and a
    caret marking the span columns. *)

val render_list : ?src:string -> t list -> string
(** All diagnostics (in {!sort} order) followed by a
    ["N error(s), M warning(s)"] trailer when any are present. *)

val list_to_string : t list -> string
(** One {!pp} line per diagnostic, newline-separated — the compact
    form used when a legacy string error is needed. *)

(** {1 JSON} *)

val span_to_json : span -> Metrics.Json.t
val to_json : t -> Metrics.Json.t
val list_to_json : t list -> Metrics.Json.t
(** [polychrony-diag/v1] record:
    [{ "schema": "polychrony-diag/v1", "diagnostics": [...],
       "errors": n, "warnings": n, "notes": n }]. Each diagnostic
    object carries [severity], [code], [message], and [span] /
    [related] when present. *)
