(** Small integer-arithmetic helpers shared by the affine clock calculus
    and the scheduler. All functions operate on OCaml [int]. *)

exception Overflow of string
(** Raised by {!lcm}/{!lcm_list} when the mathematical result does not
    fit a native [int]. A silently wrapped lcm would fabricate a
    wrong-but-plausible hyper-period, so overflow fails loudly. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the non-negative least common multiple; [lcm x 0 = 0].
    Raises {!Overflow} when the result (or [abs] of a [min_int]
    operand) exceeds the native [int] range. *)

val lcm_list : int list -> int
(** Least common multiple of a list; [lcm_list [] = 1]. Raises
    {!Overflow} as {!lcm} does. *)

val gcd_list : int list -> int
(** Greatest common divisor of a list; [gcd_list [] = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, u, v)] with [g = gcd a b] and [a*u + b*v = g]. *)

val solve_diophantine : int -> int -> int -> (int * int) option
(** [solve_diophantine a b c] returns a particular solution [(x, y)] of
    [a*x + b*y = c] if one exists. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ⌈a/b⌉ for [b > 0], correct for negative [a]. *)

val floor_div : int -> int -> int
(** [floor_div a b] is ⌊a/b⌋ for [b > 0], correct for negative [a]. *)

val pos_mod : int -> int -> int
(** [pos_mod a b] is the representative of [a] modulo [b] in [0, b-1]. *)

val float_to_string : float -> string
(** Round-trippable decimal form: the shortest of [%.15g]/[%.16g]/
    [%.17g] that [float_of_string] maps back to the same binary64
    ([nan]/[inf]/[-inf] for the non-finite values). The one float
    printer shared by the lexer token dumps, the SIGNAL pretty-printer
    and value rendering, so text output never loses precision the way
    [string_of_float]'s ["1."] / [%g]'s 6-digit rounding do. *)
