(* Counters, gauges and timers are lock-free atomics so the
   instrumented hot paths (compiled step, explorer workers) can be
   driven from several domains without losing events. Histograms keep
   plain mutable fields: they are only written from single-domain
   sections and a mutex per observation would not pay for itself. *)
type counter = { c : int Atomic.t }
type gauge = { g : int Atomic.t }
type timer = { spans : int Atomic.t; total_ns : int Atomic.t }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array; (* index i counts values v with 2^(i-1) <= |v| < 2^i *)
}

type instrument =
  | Icounter of counter
  | Igauge of gauge
  | Itimer of timer
  | Ihist of histogram

type registry = (string, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 64
let global : registry = create ()

let kind_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Itimer _ -> "timer"
  | Ihist _ -> "histogram"

let get_or_create (reg : registry) name make expect =
  match Hashtbl.find_opt reg name with
  | Some i -> (
      match expect i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics.%s: %S already registered as a %s"
               (kind_name (make ())) name (kind_name i)))
  | None ->
      let i = make () in
      Hashtbl.replace reg name i;
      (match expect i with Some x -> x | None -> assert false)

let counter ?(registry = global) name =
  get_or_create registry name
    (fun () -> Icounter { c = Atomic.make 0 })
    (function Icounter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)

let gauge ?(registry = global) name =
  get_or_create registry name
    (fun () -> Igauge { g = Atomic.make 0 })
    (function Igauge g -> Some g | _ -> None)

let set g v = Atomic.set g.g v

let rec max_gauge g v =
  let cur = Atomic.get g.g in
  if v > cur && not (Atomic.compare_and_set g.g cur v) then max_gauge g v

let timer ?(registry = global) name =
  get_or_create registry name
    (fun () -> Itimer { spans = Atomic.make 0; total_ns = Atomic.make 0 })
    (function Itimer t -> Some t | _ -> None)

(* Monotonic, so NTP steps cannot produce negative or inflated span
   durations; the same clock feeds Tracing's host-time spans. *)
let now_ns = Clock.now_ns

let add_span_ns t ns =
  ignore (Atomic.fetch_and_add t.spans 1);
  ignore (Atomic.fetch_and_add t.total_ns (max 0 ns))

let time t f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_span_ns t (now_ns () - t0)) f

let histogram ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Ihist { n = 0; sum = 0.; mn = infinity; mx = neg_infinity;
              buckets = Array.make 64 0 })
    (function Ihist h -> Some h | _ -> None)

let bucket_of v =
  let v = Float.abs v in
  if not (Float.is_finite v) || v < 1. then 0
  else min 63 (1 + int_of_float (Float.log2 v))

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

type stat =
  | Counter of int
  | Gauge of int
  | Timer of { spans : int; total_ns : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

let stat_of = function
  | Icounter c -> Counter (Atomic.get c.c)
  | Igauge g -> Gauge (Atomic.get g.g)
  | Itimer t ->
      Timer { spans = Atomic.get t.spans; total_ns = Atomic.get t.total_ns }
  | Ihist h -> Histogram { count = h.n; sum = h.sum; min = h.mn; max = h.mx }

let snapshot reg =
  Hashtbl.fold (fun name i acc -> (name, stat_of i) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find reg name = Option.map stat_of (Hashtbl.find_opt reg name)

let counter_value reg name =
  match find reg name with
  | Some (Counter n) | Some (Gauge n) -> n
  | _ -> 0

let reset reg =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Icounter c -> Atomic.set c.c 0
      | Igauge g -> Atomic.set g.g 0
      | Itimer t ->
          Atomic.set t.spans 0;
          Atomic.set t.total_ns 0
      | Ihist h ->
          h.n <- 0;
          h.sum <- 0.;
          h.mn <- infinity;
          h.mx <- neg_infinity;
          Array.fill h.buckets 0 (Array.length h.buckets) 0)
    reg

let prefix_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f < 1e3 then Format.fprintf ppf "%d ns" ns
  else if f < 1e6 then Format.fprintf ppf "%.1f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.1f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp_stat ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge n -> Format.fprintf ppf "%d" n
  | Timer { spans; total_ns } ->
      if spans = 0 then Format.fprintf ppf "0 spans"
      else begin
        Format.fprintf ppf "%d spans, %a total, %a/span" spans pp_ns total_ns
          pp_ns (total_ns / spans);
        if total_ns > 0 then
          Format.fprintf ppf ", %.0f/s"
            (float_of_int spans /. (float_of_int total_ns /. 1e9))
      end
  | Histogram { count; sum; min; max } ->
      if count = 0 then Format.fprintf ppf "0 observations"
      else
        Format.fprintf ppf "n=%d sum=%g mean=%g min=%g max=%g" count sum
          (sum /. float_of_int count)
          min max

let pp ppf reg =
  let stats = snapshot reg in
  if stats = [] then Format.fprintf ppf "(no metrics recorded)@."
  else begin
    let last_prefix = ref "" in
    List.iter
      (fun (name, st) ->
        let p = prefix_of name in
        if p <> !last_prefix then begin
          if !last_prefix <> "" then Format.fprintf ppf "@,";
          Format.fprintf ppf "[%s]@," p;
          last_prefix := p
        end;
        Format.fprintf ppf "  %-32s %a@," name pp_stat st)
      stats
  end

let pp ppf reg = Format.fprintf ppf "@[<v>%a@]" pp reg

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* Minimal RFC 8259 parser, enough to read back the records this
     module writes (bench baselines, metric snapshots). Numbers with a
     fraction or exponent parse as [Float], bare integers as [Int]. *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s !pos 4) in
             pos := !pos + 4;
             (* escape to UTF-8; surrogate pairs are not recombined,
                which is fine for the ASCII metric names we emit *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "bad escape");
          go ())
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') -> advance (); go ()
        | Some ('.' | 'e' | 'E') -> is_float := true; advance (); go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | _ -> fail "unexpected character"
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok v
    | exception Parse_error m -> Error m

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_float = function
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
end

let json_of_stat = function
  | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge n -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Timer { spans; total_ns } ->
      let extra =
        if spans = 0 then []
        else
          [ ("mean_ns", Json.Int (total_ns / spans));
            ( "rate_per_s",
              if total_ns = 0 then Json.Null
              else
                Json.Float
                  (float_of_int spans /. (float_of_int total_ns /. 1e9)) ) ]
      in
      Json.Obj
        ([ ("type", Json.String "timer");
           ("spans", Json.Int spans);
           ("total_ns", Json.Int total_ns) ]
        @ extra)
  | Histogram { count; sum; min; max } ->
      Json.Obj
        [ ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("min", if count = 0 then Json.Null else Json.Float min);
          ("max", if count = 0 then Json.Null else Json.Float max) ]

let to_json reg =
  Json.Obj (List.map (fun (name, st) -> (name, json_of_stat st)) (snapshot reg))
