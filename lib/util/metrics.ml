(* Counters, gauges and timers are lock-free atomics so the
   instrumented hot paths (compiled step, explorer workers) can be
   driven from several domains without losing events. Histograms shard
   their accumulator by domain id behind short per-shard mutexes, so
   [observe] is domain-safe without a contended global lock.

   Registries publish their name table as an immutable map in one
   [Atomic]: lookups are a plain load + map find (lock-free), creation
   takes a per-registry mutex, re-checks, and republishes the extended
   map — so scopes can mint per-request registries concurrently.

   Ambient scopes: [ambient_push]/[ambient_pop] maintain a domain-local
   stack of registries (driven by [Obs.with_scope]). A write to an
   instrument of the [global] registry also lands in the same-named
   instrument of the innermost ambient registry, so instrumented
   libraries attribute per-scope without any call-site change. When no
   scope is active anywhere the extra cost is one atomic load. *)

module StrMap = Map.Make (String)

type registry = {
  map : instrument StrMap.t Atomic.t;
  mu : Mutex.t; (* guards instrument creation; lookups are lock-free *)
}

and instrument =
  | Icounter of counter
  | Igauge of gauge
  | Itimer of timer
  | Ihist of histogram

and counter = {
  c : int Atomic.t;
  c_name : string;
  c_ambient : bool; (* lives in [global]: writes roll into the scope *)
  c_scoped : (registry * counter) option Atomic.t; (* last scope resolve *)
}

and gauge = {
  g : int Atomic.t;
  g_name : string;
  g_ambient : bool;
  g_scoped : (registry * gauge) option Atomic.t;
}

and timer = {
  spans : int Atomic.t;
  total_ns : int Atomic.t;
  t_name : string;
  t_ambient : bool;
  t_scoped : (registry * timer) option Atomic.t;
}

and histogram = {
  h_name : string;
  h_ambient : bool;
  h_scoped : (registry * histogram) option Atomic.t;
  shards : hshard array;
}

(* one histogram shard; [Domain.self () land (num_shards - 1)] picks the
   shard, so two domains only contend when their ids collide mod 8 *)
and hshard = {
  s_mu : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array; (* index i counts values v with 2^(i-1) <= |v| < 2^i *)
}

let num_shards = 8

let create () : registry =
  { map = Atomic.make StrMap.empty; mu = Mutex.create () }

let global : registry = create ()

(* ------------------------------------------------------------------ *)
(* Ambient scope stack (driven by Obs)                                 *)
(* ------------------------------------------------------------------ *)

(* total frames currently pushed across all domains; the write fast
   path reads only this when no scope is active anywhere *)
let ambient_active = Atomic.make 0

let dls_ambient : registry list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let ambient_stack () = Domain.DLS.get dls_ambient

let set_ambient_stack st =
  let old = Domain.DLS.get dls_ambient in
  Domain.DLS.set dls_ambient st;
  let d = List.length st - List.length old in
  if d <> 0 then ignore (Atomic.fetch_and_add ambient_active d)

let ambient_push reg =
  Domain.DLS.set dls_ambient (reg :: Domain.DLS.get dls_ambient);
  ignore (Atomic.fetch_and_add ambient_active 1)

let ambient_pop () =
  (match Domain.DLS.get dls_ambient with
   | _ :: rest -> Domain.DLS.set dls_ambient rest
   | [] -> ());
  ignore (Atomic.fetch_and_add ambient_active (-1))

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Itimer _ -> "timer"
  | Ihist _ -> "histogram"

let get_or_create (reg : registry) name make expect kind =
  let coerce i =
    match expect i with
    | Some x -> x
    | None ->
        invalid_arg
          (Printf.sprintf "Metrics.%s: %S already registered as a %s" kind
             name (kind_name i))
  in
  match StrMap.find_opt name (Atomic.get reg.map) with
  | Some i -> coerce i
  | None ->
      Mutex.protect reg.mu (fun () ->
          (* re-check under the lock: another domain may have won *)
          match StrMap.find_opt name (Atomic.get reg.map) with
          | Some i -> coerce i
          | None ->
              let i = make () in
              Atomic.set reg.map (StrMap.add name i (Atomic.get reg.map));
              coerce i)

let counter ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Icounter
        { c = Atomic.make 0; c_name = name;
          c_ambient = registry == global; c_scoped = Atomic.make None })
    (function Icounter c -> Some c | _ -> None)
    "counter"

let gauge ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Igauge
        { g = Atomic.make 0; g_name = name;
          g_ambient = registry == global; g_scoped = Atomic.make None })
    (function Igauge g -> Some g | _ -> None)
    "gauge"

let timer ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Itimer
        { spans = Atomic.make 0; total_ns = Atomic.make 0; t_name = name;
          t_ambient = registry == global; t_scoped = Atomic.make None })
    (function Itimer t -> Some t | _ -> None)
    "timer"

let histogram ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Ihist
        { h_name = name; h_ambient = registry == global;
          h_scoped = Atomic.make None;
          shards =
            Array.init num_shards (fun _ ->
                { s_mu = Mutex.create (); n = 0; sum = 0.; mn = infinity;
                  mx = neg_infinity; buckets = Array.make 64 0 }) })
    (function Ihist h -> Some h | _ -> None)
    "histogram"

(* Resolve the same-named instrument in the innermost ambient registry.
   The last (registry, instrument) pair is cached in one Atomic on the
   global handle, so steady-state scoped writes cost a load + physical
   equality instead of a map lookup. The pair is immutable: a stale
   cache can never mix one scope's registry with another's cell. *)

let scoped_counter top c =
  match Atomic.get c.c_scoped with
  | Some (r, c') when r == top -> c'
  | _ ->
      let c' = counter ~registry:top c.c_name in
      Atomic.set c.c_scoped (Some (top, c'));
      c'

let scoped_gauge top g =
  match Atomic.get g.g_scoped with
  | Some (r, g') when r == top -> g'
  | _ ->
      let g' = gauge ~registry:top g.g_name in
      Atomic.set g.g_scoped (Some (top, g'));
      g'

let scoped_timer top t =
  match Atomic.get t.t_scoped with
  | Some (r, t') when r == top -> t'
  | _ ->
      let t' = timer ~registry:top t.t_name in
      Atomic.set t.t_scoped (Some (top, t'));
      t'

let scoped_histogram top h =
  match Atomic.get h.h_scoped with
  | Some (r, h') when r == top -> h'
  | _ ->
      let h' = histogram ~registry:top h.h_name in
      Atomic.set h.h_scoped (Some (top, h'));
      h'

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) c =
  ignore (Atomic.fetch_and_add c.c by);
  if c.c_ambient && Atomic.get ambient_active > 0 then
    match Domain.DLS.get dls_ambient with
    | [] -> ()
    | top :: _ -> ignore (Atomic.fetch_and_add (scoped_counter top c).c by)

let set_cell g v = Atomic.set g v

let set g v =
  set_cell g.g v;
  if g.g_ambient && Atomic.get ambient_active > 0 then
    match Domain.DLS.get dls_ambient with
    | [] -> ()
    | top :: _ -> set_cell (scoped_gauge top g).g v

let rec max_cell cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then max_cell cell v

let max_gauge g v =
  max_cell g.g v;
  if g.g_ambient && Atomic.get ambient_active > 0 then
    match Domain.DLS.get dls_ambient with
    | [] -> ()
    | top :: _ -> max_cell (scoped_gauge top g).g v

(* Monotonic, so NTP steps cannot produce negative or inflated span
   durations; the same clock feeds Tracing's host-time spans. *)
let now_ns = Clock.now_ns

let add_span_cells t ns =
  ignore (Atomic.fetch_and_add t.spans 1);
  ignore (Atomic.fetch_and_add t.total_ns (max 0 ns))

let add_span_ns t ns =
  add_span_cells t ns;
  if t.t_ambient && Atomic.get ambient_active > 0 then
    match Domain.DLS.get dls_ambient with
    | [] -> ()
    | top :: _ -> add_span_cells (scoped_timer top t) ns

let time t f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_span_ns t (now_ns () - t0)) f

let bucket_of v =
  let v = Float.abs v in
  if not (Float.is_finite v) || v < 1. then 0
  else min 63 (1 + int_of_float (Float.log2 v))

let observe_shard h v =
  let s = h.shards.((Domain.self () :> int) land (num_shards - 1)) in
  Mutex.lock s.s_mu;
  s.n <- s.n + 1;
  s.sum <- s.sum +. v;
  if v < s.mn then s.mn <- v;
  if v > s.mx then s.mx <- v;
  let b = bucket_of v in
  s.buckets.(b) <- s.buckets.(b) + 1;
  Mutex.unlock s.s_mu

let observe h v =
  observe_shard h v;
  if h.h_ambient && Atomic.get ambient_active > 0 then
    match Domain.DLS.get dls_ambient with
    | [] -> ()
    | top :: _ -> observe_shard (scoped_histogram top h) v

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type stat =
  | Counter of int
  | Gauge of int
  | Timer of { spans : int; total_ns : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

(* merged totals across shards; each shard is locked for the few loads
   so a concurrent [observe] cannot yield an (n, sum) torn pair *)
let hist_totals h =
  let n = ref 0 and sum = ref 0. in
  let mn = ref infinity and mx = ref neg_infinity in
  let buckets = Array.make 64 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.s_mu;
      n := !n + s.n;
      sum := !sum +. s.sum;
      if s.mn < !mn then mn := s.mn;
      if s.mx > !mx then mx := s.mx;
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) s.buckets;
      Mutex.unlock s.s_mu)
    h.shards;
  (!n, !sum, !mn, !mx, buckets)

let stat_of = function
  | Icounter c -> Counter (Atomic.get c.c)
  | Igauge g -> Gauge (Atomic.get g.g)
  | Itimer t ->
      Timer { spans = Atomic.get t.spans; total_ns = Atomic.get t.total_ns }
  | Ihist h ->
      let n, sum, mn, mx, _ = hist_totals h in
      Histogram { count = n; sum; min = mn; max = mx }

let snapshot reg =
  StrMap.fold
    (fun name i acc -> (name, stat_of i) :: acc)
    (Atomic.get reg.map) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find reg name =
  Option.map stat_of (StrMap.find_opt name (Atomic.get reg.map))

let counter_value reg name =
  match find reg name with
  | Some (Counter n) | Some (Gauge n) -> n
  | _ -> 0

let reset reg =
  StrMap.iter
    (fun _ i ->
      match i with
      | Icounter c -> Atomic.set c.c 0
      | Igauge g -> Atomic.set g.g 0
      | Itimer t ->
          Atomic.set t.spans 0;
          Atomic.set t.total_ns 0
      | Ihist h ->
          Array.iter
            (fun s ->
              Mutex.lock s.s_mu;
              s.n <- 0;
              s.sum <- 0.;
              s.mn <- infinity;
              s.mx <- neg_infinity;
              Array.fill s.buckets 0 (Array.length s.buckets) 0;
              Mutex.unlock s.s_mu)
            h.shards)
    (Atomic.get reg.map)

let prefix_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f < 1e3 then Format.fprintf ppf "%d ns" ns
  else if f < 1e6 then Format.fprintf ppf "%.1f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.1f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp_stat ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge n -> Format.fprintf ppf "%d" n
  | Timer { spans; total_ns } ->
      if spans = 0 then Format.fprintf ppf "0 spans"
      else begin
        Format.fprintf ppf "%d spans, %a total, %a/span" spans pp_ns total_ns
          pp_ns (total_ns / spans);
        if total_ns > 0 then
          Format.fprintf ppf ", %.0f/s"
            (float_of_int spans /. (float_of_int total_ns /. 1e9))
      end
  | Histogram { count; sum; min; max } ->
      if count = 0 then Format.fprintf ppf "0 observations"
      else
        Format.fprintf ppf "n=%d sum=%g mean=%g min=%g max=%g" count sum
          (sum /. float_of_int count)
          min max

let pp ppf reg =
  let stats = snapshot reg in
  if stats = [] then Format.fprintf ppf "(no metrics recorded)@."
  else begin
    let last_prefix = ref "" in
    List.iter
      (fun (name, st) ->
        let p = prefix_of name in
        if p <> !last_prefix then begin
          if !last_prefix <> "" then Format.fprintf ppf "@,";
          Format.fprintf ppf "[%s]@," p;
          last_prefix := p
        end;
        Format.fprintf ppf "  %-32s %a@," name pp_stat st)
      stats
  end

let pp ppf reg = Format.fprintf ppf "@[<v>%a@]" pp reg

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* Minimal RFC 8259 parser, enough to read back the records this
     module writes (bench baselines, metric snapshots). Numbers with a
     fraction or exponent parse as [Float], bare integers as [Int]. *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s !pos 4) in
             pos := !pos + 4;
             (* escape to UTF-8; surrogate pairs are not recombined,
                which is fine for the ASCII metric names we emit *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "bad escape");
          go ())
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') -> advance (); go ()
        | Some ('.' | 'e' | 'E') -> is_float := true; advance (); go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | _ -> fail "unexpected character"
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
      else Ok v
    | exception Parse_error m -> Error m

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_float = function
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
end

let json_of_stat = function
  | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge n -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Timer { spans; total_ns } ->
      let extra =
        if spans = 0 then []
        else
          [ ("mean_ns", Json.Int (total_ns / spans));
            ( "rate_per_s",
              if total_ns = 0 then Json.Null
              else
                Json.Float
                  (float_of_int spans /. (float_of_int total_ns /. 1e9)) ) ]
      in
      Json.Obj
        ([ ("type", Json.String "timer");
           ("spans", Json.Int spans);
           ("total_ns", Json.Int total_ns) ]
        @ extra)
  | Histogram { count; sum; min; max } ->
      Json.Obj
        [ ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("min", if count = 0 then Json.Null else Json.Float min);
          ("max", if count = 0 then Json.Null else Json.Float max) ]

let to_json reg =
  Json.Obj (List.map (fun (name, st) -> (name, json_of_stat st)) (snapshot reg))

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
   (the dots of our dotted names included) becomes '_'. *)
let om_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

(* label values escape backslash, double quote and line feed *)
let om_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_labels = function
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> om_name k ^ "=\"" ^ om_escape v ^ "\"") kvs)
      ^ "}"

let om_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Merged exposition over several (labels, registry) pairs: each metric
   family is declared once ([# HELP] + [# TYPE]) followed by one sample
   set per labelled registry that carries it. If two dotted names
   sanitize to the same family only the first (in sorted dotted-name
   order) is exposed; a kind clash across registries drops the
   mismatching sample rather than corrupting the family. *)
let openmetrics pairs =
  let buf = Buffer.create 4096 in
  let names =
    List.concat_map
      (fun (_, reg) ->
        StrMap.fold (fun name _ acc -> name :: acc) (Atomic.get reg.map) [])
      pairs
    |> List.sort_uniq String.compare
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let om = om_name name in
      if not (Hashtbl.mem seen om) then begin
        Hashtbl.add seen om ();
        let insts =
          List.filter_map
            (fun (lbls, reg) ->
              Option.map
                (fun i -> (lbls, i))
                (StrMap.find_opt name (Atomic.get reg.map)))
            pairs
        in
        match insts with
        | [] -> ()
        | (_, first) :: _ ->
            let typ =
              match first with
              | Icounter _ -> "counter"
              | Igauge _ -> "gauge"
              | Itimer _ -> "summary"
              | Ihist _ -> "histogram"
            in
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" om (om_escape name));
            Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" om typ);
            List.iter
              (fun (lbls, i) ->
                let l = om_labels lbls in
                match (first, i) with
                | Icounter _, Icounter c ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s_total%s %d\n" om l (Atomic.get c.c))
                | Igauge _, Igauge g ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s%s %d\n" om l (Atomic.get g.g))
                | Itimer _, Itimer t ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s_count%s %d\n" om l
                         (Atomic.get t.spans));
                    Buffer.add_string buf
                      (Printf.sprintf "%s_sum%s %s\n" om l
                         (om_float (float_of_int (Atomic.get t.total_ns) /. 1e9)))
                | Ihist _, Ihist h ->
                    let n, sum, _, _, buckets = hist_totals h in
                    let cum = ref 0 in
                    let top = ref 0 in
                    Array.iteri (fun i c -> if c > 0 then top := i) buckets;
                    for i = 0 to !top do
                      cum := !cum + buckets.(i);
                      let le = om_float (Float.pow 2. (float_of_int i)) in
                      Buffer.add_string buf
                        (Printf.sprintf "%s_bucket%s %d\n" om
                           (om_labels (lbls @ [ ("le", le) ]))
                           !cum)
                    done;
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" om
                         (om_labels (lbls @ [ ("le", "+Inf") ]))
                         n);
                    Buffer.add_string buf
                      (Printf.sprintf "%s_sum%s %s\n" om l (om_float sum));
                    Buffer.add_string buf
                      (Printf.sprintf "%s_count%s %d\n" om l n)
                | _ -> (* kind clash across registries: skip the sample *) ())
              insts
      end)
    names;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_openmetrics ?(labels = []) reg = openmetrics [ (labels, reg) ]
