type counter = { mutable c : int }
type gauge = { mutable g : int }
type timer = { mutable spans : int; mutable total_ns : int }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array; (* index i counts values v with 2^(i-1) <= |v| < 2^i *)
}

type instrument =
  | Icounter of counter
  | Igauge of gauge
  | Itimer of timer
  | Ihist of histogram

type registry = (string, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 64
let global : registry = create ()

let kind_name = function
  | Icounter _ -> "counter"
  | Igauge _ -> "gauge"
  | Itimer _ -> "timer"
  | Ihist _ -> "histogram"

let get_or_create (reg : registry) name make expect =
  match Hashtbl.find_opt reg name with
  | Some i -> (
      match expect i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics.%s: %S already registered as a %s"
               (kind_name (make ())) name (kind_name i)))
  | None ->
      let i = make () in
      Hashtbl.replace reg name i;
      (match expect i with Some x -> x | None -> assert false)

let counter ?(registry = global) name =
  get_or_create registry name
    (fun () -> Icounter { c = 0 })
    (function Icounter c -> Some c | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by

let gauge ?(registry = global) name =
  get_or_create registry name
    (fun () -> Igauge { g = 0 })
    (function Igauge g -> Some g | _ -> None)

let set g v = g.g <- v
let max_gauge g v = if v > g.g then g.g <- v

let timer ?(registry = global) name =
  get_or_create registry name
    (fun () -> Itimer { spans = 0; total_ns = 0 })
    (function Itimer t -> Some t | _ -> None)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let add_span_ns t ns =
  t.spans <- t.spans + 1;
  t.total_ns <- t.total_ns + max 0 ns

let time t f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_span_ns t (now_ns () - t0)) f

let histogram ?(registry = global) name =
  get_or_create registry name
    (fun () ->
      Ihist { n = 0; sum = 0.; mn = infinity; mx = neg_infinity;
              buckets = Array.make 64 0 })
    (function Ihist h -> Some h | _ -> None)

let bucket_of v =
  let v = Float.abs v in
  if not (Float.is_finite v) || v < 1. then 0
  else min 63 (1 + int_of_float (Float.log2 v))

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

type stat =
  | Counter of int
  | Gauge of int
  | Timer of { spans : int; total_ns : int }
  | Histogram of { count : int; sum : float; min : float; max : float }

let stat_of = function
  | Icounter c -> Counter c.c
  | Igauge g -> Gauge g.g
  | Itimer t -> Timer { spans = t.spans; total_ns = t.total_ns }
  | Ihist h -> Histogram { count = h.n; sum = h.sum; min = h.mn; max = h.mx }

let snapshot reg =
  Hashtbl.fold (fun name i acc -> (name, stat_of i) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find reg name = Option.map stat_of (Hashtbl.find_opt reg name)

let counter_value reg name =
  match find reg name with
  | Some (Counter n) | Some (Gauge n) -> n
  | _ -> 0

let reset reg =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Icounter c -> c.c <- 0
      | Igauge g -> g.g <- 0
      | Itimer t ->
          t.spans <- 0;
          t.total_ns <- 0
      | Ihist h ->
          h.n <- 0;
          h.sum <- 0.;
          h.mn <- infinity;
          h.mx <- neg_infinity;
          Array.fill h.buckets 0 (Array.length h.buckets) 0)
    reg

let prefix_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f < 1e3 then Format.fprintf ppf "%d ns" ns
  else if f < 1e6 then Format.fprintf ppf "%.1f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.1f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)

let pp_stat ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge n -> Format.fprintf ppf "%d" n
  | Timer { spans; total_ns } ->
      if spans = 0 then Format.fprintf ppf "0 spans"
      else begin
        Format.fprintf ppf "%d spans, %a total, %a/span" spans pp_ns total_ns
          pp_ns (total_ns / spans);
        if total_ns > 0 then
          Format.fprintf ppf ", %.0f/s"
            (float_of_int spans /. (float_of_int total_ns /. 1e9))
      end
  | Histogram { count; sum; min; max } ->
      if count = 0 then Format.fprintf ppf "0 observations"
      else
        Format.fprintf ppf "n=%d sum=%g mean=%g min=%g max=%g" count sum
          (sum /. float_of_int count)
          min max

let pp ppf reg =
  let stats = snapshot reg in
  if stats = [] then Format.fprintf ppf "(no metrics recorded)@."
  else begin
    let last_prefix = ref "" in
    List.iter
      (fun (name, st) ->
        let p = prefix_of name in
        if p <> !last_prefix then begin
          if !last_prefix <> "" then Format.fprintf ppf "@,";
          Format.fprintf ppf "[%s]@," p;
          last_prefix := p
        end;
        Format.fprintf ppf "  %-32s %a@," name pp_stat st)
      stats
  end

let pp ppf reg = Format.fprintf ppf "@[<v>%a@]" pp reg

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf
end

let json_of_stat = function
  | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge n -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Int n) ]
  | Timer { spans; total_ns } ->
      let extra =
        if spans = 0 then []
        else
          [ ("mean_ns", Json.Int (total_ns / spans));
            ( "rate_per_s",
              if total_ns = 0 then Json.Null
              else
                Json.Float
                  (float_of_int spans /. (float_of_int total_ns /. 1e9)) ) ]
      in
      Json.Obj
        ([ ("type", Json.String "timer");
           ("spans", Json.Int spans);
           ("total_ns", Json.Int total_ns) ]
        @ extra)
  | Histogram { count; sum; min; max } ->
      Json.Obj
        [ ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("min", if count = 0 then Json.Null else Json.Float min);
          ("max", if count = 0 then Json.Null else Json.Float max) ]

let to_json reg =
  Json.Obj (List.map (fun (name, st) -> (name, json_of_stat st)) (snapshot reg))
