(** Fixed pool of OCaml 5 domains with work-stealing deques.

    Built for the bounded state-space explorer: a batch of independent
    thunks per search level, executed by [lanes] workers (the calling
    domain participates as lane 0, so [create n] spawns [n - 1]
    domains). Each lane owns a deque; owners pop newest-first, idle
    lanes steal oldest-first from the others, so unbalanced batches
    still spread.

    Cancellation is cooperative and sticky: after {!cancel}, remaining
    tasks of the current batch are drained without running and later
    batches return immediately, until {!reset_cancel}.

    Not reentrant: tasks must not call {!run_tasks} on their own pool. *)

type t

val create : int -> t
(** [create lanes] with [lanes >= 1]. [create 1] spawns no domains:
    {!run_tasks} then runs every task inline on the caller, which is
    the sequential reference behaviour. *)

val size : t -> int
(** Number of lanes (including the calling domain). *)

val run_tasks : t -> (unit -> unit) list -> unit
(** Run one batch to completion (or to drained cancellation). The
    caller works alongside the pool and returns when every task has
    either run or been skipped. If a task raises, the first exception
    is re-raised here after the batch drains (the rest of the batch is
    cancelled); the cancel flag is left raised.

    The submitting domain's ambient observation state ({!Obs.capture}:
    scope stack and trace-span parent) is installed around every task,
    so worker metrics attribute to the submitting scope and worker
    spans nest under the submitting span. The live batch depth is
    exported as the [pool.queue_depth] gauge. *)

val cancel : t -> unit
(** Raise the cancellation flag (an [Atomic] visible to every lane). *)

val cancelled : t -> bool
(** Poll the flag — long-running tasks should check it themselves. *)

val reset_cancel : t -> unit

val shutdown : t -> unit
(** Join the worker domains. The pool must be idle. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool lanes f] creates a pool, runs [f] and always shuts the
    pool down. *)
