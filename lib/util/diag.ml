type severity = Note | Warning | Error

let severity_to_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 2 | Warning -> 1 | Note -> 0

type span = {
  sp_file : string option;
  sp_line : int;
  sp_col : int;
  sp_end_col : int;
}

let span ?file ?end_col ~line ~col () =
  { sp_file = file;
    sp_line = line;
    sp_col = col;
    sp_end_col = (match end_col with Some e -> max e col | None -> col) }

let with_file file sp =
  match sp.sp_file with Some _ -> sp | None -> { sp with sp_file = Some file }

type related = {
  rel_message : string;
  rel_span : span option;
}

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  related : related list;
}

(* ---- code registry ---- *)

let registry : (string, string) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let code id description =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      (match Hashtbl.find_opt registry id with
       | Some d when d <> description ->
         invalid_arg
           (Printf.sprintf "Diag.code: %s already registered (%S vs %S)" id d
              description)
       | Some _ | None -> Hashtbl.replace registry id description);
      id)

let describe id =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () -> Hashtbl.find_opt registry id)

let codes () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ---- construction ---- *)

let make ?span ?(related = []) severity ~code message =
  (* every diagnostic lands in the always-on flight recorder, so a
     failing run's JSON output can carry its own recent history *)
  Tracing.flight_diag ~severity:(severity_to_string severity) ~code message;
  { severity; code; message; span; related }

let kmake ?span ?related severity ~code fmt =
  Format.kasprintf (fun message -> make ?span ?related severity ~code message)
    fmt

let errorf ?span ?related ~code fmt = kmake ?span ?related Error ~code fmt
let warningf ?span ?related ~code fmt = kmake ?span ?related Warning ~code fmt
let notef ?span ?related ~code fmt = kmake ?span ?related Note ~code fmt

(* ---- collector ---- *)

type collector = { mutable acc : t list (* reversed *) }

let collector () = { acc = [] }
let add c d = c.acc <- d :: c.acc
let add_list c ds = List.iter (add c) ds
let result c = List.rev c.acc
let is_empty c = c.acc = []

(* ---- queries ---- *)

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d ->
           if severity_rank d.severity > severity_rank acc then d.severity
           else acc)
         d.severity ds)

let sort ds =
  let key d =
    match d.span with
    | None -> ("", max_int, max_int)
    | Some sp ->
      (Option.value ~default:"" sp.sp_file, sp.sp_line, sp.sp_col)
  in
  List.stable_sort
    (fun a b ->
      let c = compare (key a) (key b) in
      if c <> 0 then c
      else compare (severity_rank b.severity) (severity_rank a.severity))
    ds

let exit_code ds =
  match max_severity ds with
  | Some Error -> 1
  | Some Warning -> 2
  | Some Note | None -> 0

(* ---- rendering ---- *)

let pp_span ppf sp =
  (match sp.sp_file with
   | Some f -> Format.fprintf ppf "%s:" f
   | None -> ());
  Format.fprintf ppf "%d:%d" sp.sp_line sp.sp_col

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_to_string d.severity) d.code;
  (match d.span with
   | Some sp -> Format.fprintf ppf " %a:" pp_span sp
   | None -> Format.fprintf ppf ":");
  Format.fprintf ppf " %s" d.message;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  = %s" r.rel_message;
      match r.rel_span with
      | Some sp -> Format.fprintf ppf " (%a)" pp_span sp
      | None -> ())
    d.related

let to_string d = Format.asprintf "@[<v>%a@]" pp d

let source_line src n =
  if n <= 0 then None
  else begin
    let len = String.length src in
    let rec find_start line pos =
      if line = n then Some pos
      else
        match String.index_from_opt src pos '\n' with
        | Some i when i + 1 <= len -> find_start (line + 1) (i + 1)
        | Some _ | None -> None
    in
    match find_start 1 0 with
    | None -> None
    | Some start ->
      let stop =
        match String.index_from_opt src start '\n' with
        | Some i -> i
        | None -> len
      in
      if start > len then None else Some (String.sub src start (stop - start))
  end

let excerpt src sp =
  match source_line src sp.sp_line with
  | None -> ""
  | Some line ->
    let gutter = string_of_int sp.sp_line in
    let pad = String.make (String.length gutter) ' ' in
    let caret_col = max 1 sp.sp_col in
    let width = max 1 (sp.sp_end_col - sp.sp_col + 1) in
    (* tabs in the excerpt would desynchronise the caret; render as
       single spaces *)
    let line = String.map (fun c -> if c = '\t' then ' ' else c) line in
    let carets =
      String.make (caret_col - 1) ' ' ^ "^"
      ^ String.make (max 0 (width - 1)) '~'
    in
    Printf.sprintf "  %s | %s\n  %s | %s\n" gutter line pad carets

let render ?src d =
  let head = to_string d in
  match d.span, src with
  | Some sp, Some src when sp.sp_line > 0 -> head ^ "\n" ^ excerpt src sp
  | _ -> head ^ "\n"

let render_list ?src ds =
  let ds = sort ds in
  let body = String.concat "" (List.map (render ?src) ds) in
  let e = count Error ds and w = count Warning ds in
  if e = 0 && w = 0 then body
  else
    Printf.sprintf "%s%d error(s), %d warning(s)\n" body e w

let list_to_string ds = String.concat "\n" (List.map to_string ds)

(* ---- JSON ---- *)

module Json = Metrics.Json

let span_to_json sp =
  Json.Obj
    ((match sp.sp_file with
      | Some f -> [ ("file", Json.String f) ]
      | None -> [])
     @ [ ("line", Json.Int sp.sp_line);
         ("col", Json.Int sp.sp_col);
         ("end_col", Json.Int sp.sp_end_col) ])

let to_json d =
  Json.Obj
    ([ ("severity", Json.String (severity_to_string d.severity));
       ("code", Json.String d.code);
       ("message", Json.String d.message) ]
     @ (match d.span with
        | Some sp -> [ ("span", span_to_json sp) ]
        | None -> [])
     @
     match d.related with
     | [] -> []
     | rs ->
       [ ( "related",
           Json.Arr
             (List.map
                (fun r ->
                  Json.Obj
                    (("message", Json.String r.rel_message)
                     :: (match r.rel_span with
                         | Some sp -> [ ("span", span_to_json sp) ]
                         | None -> [])))
                rs) ) ])

let list_to_json ds =
  Json.Obj
    [ ("schema", Json.String "polychrony-diag/v1");
      ("diagnostics", Json.Arr (List.map to_json (sort ds)));
      ("errors", Json.Int (count Error ds));
      ("warnings", Json.Int (count Warning ds));
      ("notes", Json.Int (count Note ds)) ]
